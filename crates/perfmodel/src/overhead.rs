//! Expected fault-tolerance overhead (Equations 2–8 and Figures 1 & 7).
//!
//! The paper derives the expected total execution time under checkpointing
//! with the optimal (Young) interval:
//!
//! ```text
//! T_t = N·T_it / (1 − sqrt(2λT_ckp) − λT_rc)                    (2)
//! ```
//!
//! and, approximating `T_rc ≈ T_ckp`, the overhead *ratio* relative to the
//! failure-free productive time `N·T_it` becomes `f(T_ckp, λ) / (1 −
//! f(T_ckp, λ))` with `f(t, λ) = sqrt(2λt) + λt` (Equations 4–5), plotted
//! as the surface of Figure 1.  The lossy model adds the extra-iteration
//! penalty `λ·N′·T_it` (Equations 7–8, Figure 7).

use serde::{Deserialize, Serialize};

/// The helper `f(t, λ) = sqrt(2λt) + λt` used throughout Section 4.
fn f(t_ckp: f64, lambda: f64) -> f64 {
    (2.0 * lambda * t_ckp).sqrt() + lambda * t_ckp
}

/// Expected fault-tolerance overhead of *traditional* checkpointing as a
/// fraction of the productive execution time (Equation 5).
///
/// Returns `f / (1 − f)`; if the denominator is non-positive the system
/// cannot make progress (failures arrive faster than recovery) and
/// `f64::INFINITY` is returned.
///
/// # Panics
/// Panics if `t_ckp` or `lambda` is negative or not finite.
pub fn traditional_overhead_ratio(t_ckp: f64, lambda: f64) -> f64 {
    assert!(t_ckp.is_finite() && t_ckp >= 0.0, "invalid checkpoint time");
    assert!(lambda.is_finite() && lambda >= 0.0, "invalid failure rate");
    let fv = f(t_ckp, lambda);
    if fv >= 1.0 {
        f64::INFINITY
    } else {
        fv / (1.0 - fv)
    }
}

/// Expected fault-tolerance overhead of *lossy* checkpointing as a fraction
/// of the productive execution time (Equation 8): the checkpoint is cheaper
/// (`t_lossy_ckp`, which includes the compression time) but each recovery
/// costs `n_extra` additional iterations of `t_it` seconds.
///
/// # Panics
/// Panics on negative or non-finite inputs.
pub fn lossy_overhead_ratio(t_lossy_ckp: f64, lambda: f64, n_extra: f64, t_it: f64) -> f64 {
    assert!(
        t_lossy_ckp.is_finite() && t_lossy_ckp >= 0.0,
        "invalid checkpoint time"
    );
    assert!(lambda.is_finite() && lambda >= 0.0, "invalid failure rate");
    assert!(n_extra.is_finite() && n_extra >= 0.0, "invalid extra iterations");
    assert!(t_it.is_finite() && t_it >= 0.0, "invalid iteration time");
    let fv = f(t_lossy_ckp, lambda) + lambda * n_extra * t_it;
    if fv >= 1.0 {
        f64::INFINITY
    } else {
        fv / (1.0 - fv)
    }
}

/// Mean per-checkpoint cost of an anchored temporal-delta stream: one full
/// *anchor* checkpoint costing `anchor_seconds` every `anchor_interval`
/// snapshots, with the `anchor_interval − 1` checkpoints in between written
/// as deltas costing `delta_seconds` each:
///
/// ```text
/// T̄_ckp = (T_anchor + (K − 1)·T_delta) / K
/// ```
///
/// With `anchor_interval` ≤ 1 (delta coding disabled) this is simply
/// `anchor_seconds`.  The amortized cost is what the paper's `T_ckp`
/// becomes when the checkpoint stream is delta-encoded: plug it into
/// [`lossy_overhead_ratio`] (or use [`lossy_delta_overhead_ratio`]) to
/// model the end-to-end overhead of a delta-enabled run.
///
/// # Panics
/// Panics on negative or non-finite inputs.
pub fn amortized_checkpoint_seconds(
    anchor_seconds: f64,
    delta_seconds: f64,
    anchor_interval: usize,
) -> f64 {
    assert!(
        anchor_seconds.is_finite() && anchor_seconds >= 0.0,
        "invalid checkpoint time"
    );
    assert!(
        delta_seconds.is_finite() && delta_seconds >= 0.0,
        "invalid checkpoint time"
    );
    if anchor_interval <= 1 {
        return anchor_seconds;
    }
    let k = anchor_interval as f64;
    (anchor_seconds + (k - 1.0) * delta_seconds) / k
}

/// Expected fault-tolerance overhead of *lossy delta-encoded* checkpointing
/// (Equation 8 with the amortized checkpoint cost of
/// [`amortized_checkpoint_seconds`]): anchors every `anchor_interval`
/// snapshots cost `anchor_seconds`, the deltas in between cost
/// `delta_seconds`, and each recovery still pays `n_extra` additional
/// iterations of `t_it` seconds.
///
/// Note the asymmetry the delta trade buys: the *write* side is amortized
/// down towards `delta_seconds`, while the *recovery* side reads the whole
/// chain — the model keeps `T_rc ≈ T_ckp` of the paper's simplified form,
/// which is conservative because anchors bound the chain length.
///
/// # Panics
/// Panics on negative or non-finite inputs.
pub fn lossy_delta_overhead_ratio(
    anchor_seconds: f64,
    delta_seconds: f64,
    anchor_interval: usize,
    lambda: f64,
    n_extra: f64,
    t_it: f64,
) -> f64 {
    let amortized = amortized_checkpoint_seconds(anchor_seconds, delta_seconds, anchor_interval);
    lossy_overhead_ratio(amortized, lambda, n_extra, t_it)
}

/// Expected total execution time (Equation 2 generalised): `N·T_it` of
/// productive work inflated by checkpointing, recovery and — for the lossy
/// scheme — extra iterations per recovery.
///
/// Pass `n_extra = 0` for traditional/lossless checkpointing.
///
/// # Panics
/// Panics on negative or non-finite inputs.
pub fn expected_total_time(
    productive_seconds: f64,
    t_ckp: f64,
    t_rc: f64,
    lambda: f64,
    n_extra: f64,
    t_it: f64,
) -> f64 {
    assert!(
        productive_seconds.is_finite() && productive_seconds >= 0.0,
        "invalid productive time"
    );
    assert!(t_rc.is_finite() && t_rc >= 0.0, "invalid recovery time");
    let denom =
        1.0 - (2.0 * lambda * t_ckp).sqrt() - lambda * t_rc - lambda * n_extra * t_it;
    if denom <= 0.0 {
        f64::INFINITY
    } else {
        productive_seconds / denom
    }
}

/// The per-scheme checkpoint/recovery costs needed to evaluate the model for
/// one configuration (one solver at one scale), in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointCosts {
    /// Mean time of one checkpoint (including compression, if any).
    pub checkpoint_seconds: f64,
    /// Mean time of one recovery (including decompression and re-reading
    /// static variables, if modelled).
    pub recovery_seconds: f64,
    /// Mean extra iterations caused by one lossy recovery (`N′`); zero for
    /// exact schemes.
    pub extra_iterations_per_recovery: f64,
}

impl CheckpointCosts {
    /// Costs of an exact (traditional or lossless) scheme.
    pub fn exact(checkpoint_seconds: f64, recovery_seconds: f64) -> Self {
        CheckpointCosts {
            checkpoint_seconds,
            recovery_seconds,
            extra_iterations_per_recovery: 0.0,
        }
    }

    /// Expected overhead ratio for these costs under failure rate `lambda`
    /// (per second) and iteration time `t_it`, using the simplified
    /// `T_rc ≈ T_ckp` form the paper plots (Equations 4 and 8).
    pub fn overhead_ratio(&self, lambda: f64, t_it: f64) -> f64 {
        lossy_overhead_ratio(
            self.checkpoint_seconds,
            lambda,
            self.extra_iterations_per_recovery,
            t_it,
        )
    }
}

/// One point of the Figure 1 / Figure 7 overhead surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadPoint {
    /// Failure rate in failures per hour.
    pub failures_per_hour: f64,
    /// Checkpoint time in seconds.
    pub checkpoint_seconds: f64,
    /// Expected overhead as a fraction of productive time.
    pub overhead_ratio: f64,
}

/// The Figure 1 surface: expected traditional-checkpointing overhead over a
/// grid of failure rates and checkpoint times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpectedOverheadSurface {
    /// Grid points in row-major order (failure rate varying slowest).
    pub points: Vec<OverheadPoint>,
}

impl ExpectedOverheadSurface {
    /// Generates the surface over `failures_per_hour` ∈ [0, max_rate] and
    /// `checkpoint_seconds` ∈ [0, max_ckpt] with the given resolutions —
    /// the paper plots 0–3.5 failures/hour and 0–140 s.
    ///
    /// # Panics
    /// Panics if a resolution is zero.
    pub fn generate(
        max_failures_per_hour: f64,
        rate_steps: usize,
        max_checkpoint_seconds: f64,
        ckpt_steps: usize,
    ) -> Self {
        assert!(rate_steps > 0 && ckpt_steps > 0, "resolution must be positive");
        let mut points = Vec::with_capacity((rate_steps + 1) * (ckpt_steps + 1));
        for i in 0..=rate_steps {
            let rate = max_failures_per_hour * i as f64 / rate_steps as f64;
            let lambda = rate / 3600.0;
            for j in 0..=ckpt_steps {
                let t_ckp = max_checkpoint_seconds * j as f64 / ckpt_steps as f64;
                points.push(OverheadPoint {
                    failures_per_hour: rate,
                    checkpoint_seconds: t_ckp,
                    overhead_ratio: traditional_overhead_ratio(t_ckp, lambda),
                });
            }
        }
        ExpectedOverheadSurface { points }
    }

    /// The maximum overhead on the surface.
    pub fn max_overhead(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.overhead_ratio)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOURLY: f64 = 1.0 / 3600.0;

    #[test]
    fn zero_failure_rate_means_zero_overhead() {
        assert_eq!(traditional_overhead_ratio(120.0, 0.0), 0.0);
        assert_eq!(lossy_overhead_ratio(25.0, 0.0, 500.0, 1.2), 0.0);
    }

    #[test]
    fn figure1_magnitude_check() {
        // §4.1 / Figure 1: with T_ckp = 120 s and an hourly MTTI the
        // expected overhead is roughly 40 %.
        let overhead = traditional_overhead_ratio(120.0, HOURLY);
        assert!(
            overhead > 0.30 && overhead < 0.45,
            "expected ≈40 % overhead, got {:.1}%",
            overhead * 100.0
        );
        // With a 3-hour MTTI it drops well below.
        let overhead3 = traditional_overhead_ratio(120.0, HOURLY / 3.0);
        assert!(overhead3 < overhead / 1.8);
    }

    #[test]
    fn lossy_beats_traditional_when_extra_iterations_small() {
        // GMRES example of §4.3: T_ckp 120 → 25 s, T_it = 1.2 s, MTTI 1 h.
        let trad = traditional_overhead_ratio(120.0, HOURLY);
        let lossy_no_delay = lossy_overhead_ratio(25.0, HOURLY, 0.0, 1.2);
        let lossy_at_bound = lossy_overhead_ratio(25.0, HOURLY, 500.0, 1.2);
        let lossy_over_bound = lossy_overhead_ratio(25.0, HOURLY, 1200.0, 1.2);
        assert!(lossy_no_delay < trad);
        // At the Theorem-1 bound the two schemes are comparable.
        assert!((lossy_at_bound - trad).abs() / trad < 0.12);
        // Far beyond the bound, lossy loses.
        assert!(lossy_over_bound > trad);
    }

    #[test]
    fn amortized_cost_interpolates_between_anchor_and_delta() {
        // K ≤ 1 disables delta coding: the cost is the anchor cost.
        assert_eq!(amortized_checkpoint_seconds(120.0, 30.0, 0), 120.0);
        assert_eq!(amortized_checkpoint_seconds(120.0, 30.0, 1), 120.0);
        // K = 2: exactly halfway.
        assert_eq!(amortized_checkpoint_seconds(120.0, 30.0, 2), 75.0);
        // Growing K approaches the delta cost from above, monotonically.
        let mut prev = f64::INFINITY;
        for k in 2..=64 {
            let t = amortized_checkpoint_seconds(120.0, 30.0, k);
            assert!(t < prev, "amortized cost must fall with K");
            assert!(t > 30.0, "amortized cost stays above the delta cost");
            prev = t;
        }
        assert!(amortized_checkpoint_seconds(120.0, 30.0, 64) < 32.0);
        // Equal costs: K is irrelevant.
        assert_eq!(amortized_checkpoint_seconds(25.0, 25.0, 7), 25.0);
    }

    #[test]
    fn delta_encoding_reduces_the_modelled_overhead() {
        // §4.3-style costs with a delta checkpoint 4× cheaper than the
        // anchor: the amortized overhead must land strictly between the
        // all-delta lower bound and the all-anchor upper bound, and must
        // beat the anchor-only lossy scheme.
        let lossy = lossy_overhead_ratio(25.0, HOURLY, 100.0, 1.2);
        let delta4 = lossy_delta_overhead_ratio(25.0, 6.25, 4, HOURLY, 100.0, 1.2);
        let all_delta = lossy_overhead_ratio(6.25, HOURLY, 100.0, 1.2);
        assert!(delta4 < lossy, "delta {delta4} must beat anchor-only {lossy}");
        assert!(delta4 > all_delta, "anchors keep it above the all-delta bound");
        // Interval 1 degenerates to the plain lossy model exactly.
        assert_eq!(
            lossy_delta_overhead_ratio(25.0, 6.25, 1, HOURLY, 100.0, 1.2),
            lossy
        );
    }

    #[test]
    fn overhead_increases_with_rate_and_ckpt_time() {
        let base = traditional_overhead_ratio(60.0, HOURLY);
        assert!(traditional_overhead_ratio(120.0, HOURLY) > base);
        assert!(traditional_overhead_ratio(60.0, 2.0 * HOURLY) > base);
    }

    #[test]
    fn saturation_returns_infinity() {
        // Absurdly slow checkpointing with a high failure rate.
        let r = traditional_overhead_ratio(36_000.0, 10.0 * HOURLY);
        assert!(r.is_infinite());
        let t = expected_total_time(1000.0, 36_000.0, 36_000.0, 10.0 * HOURLY, 0.0, 1.0);
        assert!(t.is_infinite());
    }

    #[test]
    fn expected_total_time_consistent_with_ratio() {
        let productive = 7160.0; // GMRES baseline of §4.3
        let t_it = 7160.0 / 5875.0;
        let total = expected_total_time(productive, 120.0, 120.0, HOURLY, 0.0, t_it);
        let ratio = (total - productive) / productive;
        let simplified = traditional_overhead_ratio(120.0, HOURLY);
        // Equation 3 versus the simplified Equation 4 agree closely here.
        assert!((ratio - simplified).abs() < 0.02);
    }

    #[test]
    fn checkpoint_costs_helpers() {
        let exact = CheckpointCosts::exact(120.0, 130.0);
        assert_eq!(exact.extra_iterations_per_recovery, 0.0);
        let lossy = CheckpointCosts {
            checkpoint_seconds: 25.0,
            recovery_seconds: 30.0,
            extra_iterations_per_recovery: 100.0,
        };
        assert!(lossy.overhead_ratio(HOURLY, 1.2) < exact.overhead_ratio(HOURLY, 1.2));
    }

    #[test]
    fn figure1_surface_shape() {
        let surface = ExpectedOverheadSurface::generate(3.5, 10, 140.0, 14);
        assert_eq!(surface.points.len(), 11 * 15);
        // The corner with zero rate or zero checkpoint time has zero
        // overhead; the opposite corner has the maximum.
        assert_eq!(surface.points[0].overhead_ratio, 0.0);
        let max = surface.max_overhead();
        let corner = surface.points.last().unwrap();
        assert_eq!(corner.overhead_ratio, max);
        assert!(max > 1.0, "3.5 failures/hour at 140 s ckpt is > 100 % overhead");
        // Monotone along the checkpoint-time axis for a fixed rate.
        let row: Vec<_> = surface.points[15 * 5..15 * 6].to_vec();
        for w in row.windows(2) {
            assert!(w[1].overhead_ratio >= w[0].overhead_ratio);
        }
    }

    #[test]
    #[should_panic(expected = "invalid checkpoint time")]
    fn negative_checkpoint_time_panics() {
        let _ = traditional_overhead_ratio(-1.0, HOURLY);
    }
}
