//! Experiment harness: the rows behind Table 3 and Figures 4–10.
//!
//! Each function regenerates the data of one table or figure of the paper's
//! evaluation section, returning serialisable row structs that the
//! `lcr-bench` binaries print as aligned text and JSON.  The shape of each
//! result (who wins, by what factor, how it scales) is the reproduction
//! target; absolute seconds come from the simulated Bebop-like PFS model.

use crate::runner::{ExecutionBackend, FaultTolerantRunner, Persistence, RunConfig, RunReport};
use crate::strategy::CheckpointStrategy;
use crate::workload::{paper_rtol, PaperWorkload, ScaledProblem};
use lcr_ckpt::{CheckpointLevel, ClusterConfig, PfsModel};
use lcr_compress::{DeltaMode, ErrorBound, SzCompressor, SzTemporalState};
use lcr_perfmodel::{
    lossy_overhead_ratio, theorem2_extra_iterations_upper_bound, traditional_overhead_ratio,
    young_optimal_interval, young_optimal_interval_iterations,
};
use lcr_solvers::SolverKind;
use serde::{Deserialize, Serialize};

/// The process counts of the paper's weak-scaling study.
pub const PAPER_PROCESS_COUNTS: &[usize] = &[256, 512, 768, 1024, 1280, 1536, 1792, 2048];

/// The paper's baseline (failure-free, checkpoint-free) execution times at
/// 2,048 processes, in seconds: Jacobi ≈50 min, GMRES ≈120 min, CG ≈35 min
/// (§5.4).  Used to calibrate the simulated per-iteration cost.
pub fn paper_baseline_seconds(kind: SolverKind) -> f64 {
    match kind {
        SolverKind::Gmres => 120.0 * 60.0,
        SolverKind::Cg => 35.0 * 60.0,
        _ => 50.0 * 60.0,
    }
}

/// Compression ratios measured on real solver state, used to extrapolate
/// paper-scale checkpoint sizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredRatios {
    /// Lossless (FPC+LZSS) compression ratio on the dynamic vectors.
    pub lossless: f64,
    /// Lossy (SZ, paper error-bound policy) compression ratio.
    pub lossy: f64,
    /// Additional factor the anchored delta chain saves over direct
    /// (anchor-every-snapshot) lossy coding of the same checkpoint
    /// sequence: direct stream bytes ÷ chain stream bytes, ≥ 1.
    pub lossy_delta: f64,
}

/// Measures lossless and lossy compression ratios on the converged dynamic
/// state of the given solver, which is the regime the paper's Table 3
/// averages over.
pub fn measure_strategy_ratios(
    workload: &PaperWorkload,
    problem: &ScaledProblem,
    kind: SolverKind,
    max_iterations: usize,
) -> MeasuredRatios {
    let mut solver = workload.build_solver(problem, kind, max_iterations);
    // Run halfway to convergence so the state is representative of the bulk
    // of the checkpoints, then measure on that state.
    let mut probe = workload.build_solver(problem, kind, max_iterations);
    probe.run_to_convergence();
    let total = probe.iteration().max(2);
    for _ in 0..total / 2 {
        solver.step();
    }

    let strategies = [
        CheckpointStrategy::Traditional,
        CheckpointStrategy::lossless_default(),
        if kind == SolverKind::Gmres {
            CheckpointStrategy::lossy_gmres()
        } else {
            CheckpointStrategy::lossy_default()
        },
    ];
    let sizes: Vec<usize> = strategies
        .iter()
        .map(|s| s.encode(solver.as_ref()).expect("encode").encoded_bytes())
        .collect();

    // Delta-chain factor: snapshot the solution every 5 iterations from the
    // halfway state onward, coding the sequence once as an anchored delta
    // chain and once direct (anchor every snapshot), both with the paper's
    // default point-wise relative bound.
    let sz = SzCompressor::new();
    let bound = ErrorBound::PointwiseRel(1e-4);
    let mut chain_state = SzTemporalState::new();
    let mut chain_bytes = 0usize;
    let mut direct_bytes = 0usize;
    for snapshot in 0..4 {
        let x = solver.solution().clone();
        let mut direct_state = SzTemporalState::new();
        let mut direct = Vec::new();
        sz.compress_temporal_into(
            x.as_slice(),
            bound,
            DeltaMode::Order2,
            true,
            &mut direct_state,
            &mut direct,
        )
        .expect("direct compression");
        let mut encoded = Vec::new();
        sz.compress_temporal_into(
            x.as_slice(),
            bound,
            DeltaMode::Order2,
            snapshot == 0,
            &mut chain_state,
            &mut encoded,
        )
        .expect("chain compression");
        direct_bytes += direct.len();
        chain_bytes += encoded.len();
        for _ in 0..5 {
            solver.step();
        }
    }

    // A production checkpointing system falls back to storing the raw bytes
    // when compression would expand them (as gzip's "stored" blocks do), so
    // the effective ratio never drops below 1.
    MeasuredRatios {
        lossless: (sizes[0] as f64 / sizes[1] as f64).max(1.0),
        lossy: (sizes[0] as f64 / sizes[2] as f64).max(1.0),
        lossy_delta: (direct_bytes as f64 / chain_bytes as f64).max(1.0),
    }
}

// ---------------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------------

/// Measures the lossy per-shard compression ratio on the *real* sharded
/// checkpoint path: runs the local instance on the sharded executor with
/// per-shard SZ epoch checkpoints and returns `original_bytes /
/// stored_bytes` of the newest committed epoch (all shard segments
/// summed).  `None` for solvers the sharded backend does not support
/// (GMRES & the stationary variants beyond Jacobi).
fn measured_shard_segment_ratio(
    problem: &ScaledProblem,
    kind: SolverKind,
    max_iterations: usize,
) -> Option<f64> {
    use lcr_solvers::ShardedMethod;
    let method = match kind {
        SolverKind::Cg => ShardedMethod::Cg,
        SolverKind::Jacobi => ShardedMethod::Jacobi,
        SolverKind::BiCgStab => ShardedMethod::BiCgStab,
        _ => return None,
    };
    let mut a = (*problem.system.a).clone();
    let mut b = (*problem.system.b).clone();
    if method == ShardedMethod::Cg {
        // The paper's Poisson operator is negative definite; CG needs SPD.
        for v in a.values_mut() {
            *v = -*v;
        }
        b.scale(-1.0);
    }
    let n = a.nrows();
    let shards = 4.min(n);
    let dir = std::env::temp_dir().join(format!(
        "lcr-table3-shard-{}-{}",
        std::process::id(),
        kind.name()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = crate::sharded::ShardedRunConfig::new(shards, method);
    cfg.rtol = paper_rtol(kind);
    cfg.max_iterations = max_iterations.min(2_000);
    // Small local instances must still span all shards.
    cfg.reduce_block = cfg.reduce_block.min(n.div_ceil(shards * 4).max(1));
    cfg.checkpoint_interval = 5;
    cfg.ckpt_dir = Some(dir.clone());
    let report = crate::sharded::run_sharded(&a, &b, &cfg);
    let _ = std::fs::remove_dir_all(&dir);
    let stored = report.committed_epochs.last()?.total_bytes();
    (stored > 0).then(|| (n * std::mem::size_of::<f64>()) as f64 / stored as f64)
}

/// One row of Table 3: per-process checkpoint sizes for one solver at one
/// scale under the three schemes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Number of processes.
    pub processes: usize,
    /// Paper-scale problem edge (`n` of `n³`).
    pub problem_edge: usize,
    /// Solver.
    pub solver: String,
    /// Traditional checkpoint size per process, MB.
    pub traditional_mb: f64,
    /// Lossless checkpoint size per process, MB.
    pub lossless_mb: f64,
    /// Lossy checkpoint size per process, MB.
    pub lossy_mb: f64,
    /// Lossy size per process with the anchored delta chain (average over
    /// the chain, anchors included), MB.
    pub lossy_delta_mb: f64,
    /// *Measured* lossy checkpoint size per process, MB: the per-shard SZ
    /// segment sizes actually written by the sharded checkpoint path
    /// (newest committed epoch), extrapolated to paper scale with the same
    /// per-process byte accounting as the estimate columns.  `None` for
    /// solvers the sharded backend does not run (e.g. GMRES).
    pub measured_shard_mb: Option<f64>,
}

/// Regenerates Table 3 for the given solvers and process counts.
///
/// `local_grid_edge` controls the size of the locally solved instance used
/// to measure the compression ratios.
pub fn table3(
    solvers: &[SolverKind],
    process_counts: &[usize],
    local_grid_edge: usize,
    max_iterations: usize,
) -> Vec<Table3Row> {
    let mut rows = Vec::new();
    for &kind in solvers {
        // Ratios depend on the solver state, not on the process count.
        let workload = PaperWorkload::poisson(process_counts[0], local_grid_edge);
        let problem = workload.build();
        let ratios = measure_strategy_ratios(&workload, &problem, kind, max_iterations);
        // Measured (not estimated) per-shard segment ratio from the real
        // sharded checkpoint path; like the estimate ratios, it depends on
        // the solver state, not on the process count.
        let shard_ratio = measured_shard_segment_ratio(&problem, kind, max_iterations);
        for &procs in process_counts {
            let w = PaperWorkload::poisson(procs, local_grid_edge);
            let p = w.build();
            let vectors = kind.traditional_checkpoint_vectors() as f64;
            let trad_mb = vectors * p.paper_vector_bytes_per_process() / 1e6;
            rows.push(Table3Row {
                processes: procs,
                problem_edge: (p.paper_global_unknowns as f64).cbrt().round() as usize,
                solver: kind.name().to_string(),
                traditional_mb: trad_mb,
                lossless_mb: trad_mb / ratios.lossless,
                // The lossy scheme always checkpoints a single vector (x).
                lossy_mb: (p.paper_vector_bytes_per_process() / 1e6) / ratios.lossy,
                lossy_delta_mb: (p.paper_vector_bytes_per_process() / 1e6)
                    / (ratios.lossy * ratios.lossy_delta),
                measured_shard_mb: shard_ratio
                    .map(|r| (p.paper_vector_bytes_per_process() / 1e6) / r),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figures 4–6: checkpoint / recovery times
// ---------------------------------------------------------------------------

/// One row of Figures 4–6: average time of one checkpoint and one recovery
/// for a solver/scheme/scale combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointTimeRow {
    /// Number of processes.
    pub processes: usize,
    /// Solver.
    pub solver: String,
    /// Scheme ("traditional", "lossless", "lossy").
    pub strategy: String,
    /// Average time of one checkpoint, seconds.
    pub checkpoint_seconds: f64,
    /// Average time of one recovery, seconds.
    pub recovery_seconds: f64,
}

/// Regenerates the Figure 4/5/6 series for one solver.
pub fn checkpoint_recovery_times(
    kind: SolverKind,
    process_counts: &[usize],
    local_grid_edge: usize,
    pfs: &PfsModel,
    max_iterations: usize,
) -> Vec<CheckpointTimeRow> {
    let workload = PaperWorkload::poisson(process_counts[0], local_grid_edge);
    let problem = workload.build();
    let ratios = measure_strategy_ratios(&workload, &problem, kind, max_iterations);
    let mut rows = Vec::new();
    for &procs in process_counts {
        let w = PaperWorkload::poisson(procs, local_grid_edge);
        let p = w.build();
        let cluster = ClusterConfig::bebop_like(procs, 1.0);
        let vectors = kind.traditional_checkpoint_vectors();
        let dynamic_bytes = vectors * p.paper_vector_bytes();
        let lossy_dynamic_bytes = p.paper_vector_bytes();
        // Static-variable reconstruction cost during recovery: the matrix
        // and preconditioner are regenerated from the stencil rather than
        // read back from storage (as the paper's PETSc set-up does), so the
        // I/O part of static recovery is re-reading the right-hand side —
        // one more global vector.  This is what makes recovery moderately
        // more expensive than checkpointing in Figures 4–6.
        let static_bytes = p.paper_vector_bytes();

        let mk = |strategy: &str, ckpt_bytes: f64, with_codec: bool, lossy: bool| {
            let write = pfs.write_seconds(ckpt_bytes as usize, procs, CheckpointLevel::Pfs);
            let read =
                pfs.read_seconds(ckpt_bytes as usize + static_bytes, procs, CheckpointLevel::Pfs);
            let (comp, decomp) = if with_codec {
                let original = if lossy { lossy_dynamic_bytes } else { dynamic_bytes };
                (
                    cluster.compression_seconds(original),
                    cluster.decompression_seconds(original),
                )
            } else {
                (0.0, 0.0)
            };
            CheckpointTimeRow {
                processes: procs,
                solver: kind.name().to_string(),
                strategy: strategy.to_string(),
                checkpoint_seconds: write + comp,
                recovery_seconds: read + decomp,
            }
        };

        rows.push(mk("traditional", dynamic_bytes as f64, false, false));
        rows.push(mk(
            "lossless",
            dynamic_bytes as f64 / ratios.lossless,
            true,
            false,
        ));
        rows.push(mk(
            "lossy",
            lossy_dynamic_bytes as f64 / ratios.lossy,
            true,
            true,
        ));
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 7: expected overhead from the performance model
// ---------------------------------------------------------------------------

/// One point of Figure 7: the model-predicted fault-tolerance overhead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpectedOverheadRow {
    /// Number of processes.
    pub processes: usize,
    /// Solver.
    pub solver: String,
    /// Scheme.
    pub strategy: String,
    /// Mean time to interruption, hours.
    pub mtti_hours: f64,
    /// Expected overhead as a fraction of productive time.
    pub expected_overhead: f64,
}

/// The paper's per-solver expected extra iterations per lossy recovery
/// (`N′`): ≈6 for Jacobi (Theorem 2 with R ≈ 0.99998, eb = 1e-4,
/// N = 3941), 0 for GMRES (Theorem 3), 25 % of the iteration count for CG
/// (the empirical Figure 2 value).
pub fn paper_n_extra(kind: SolverKind, total_iterations: usize) -> f64 {
    match kind {
        SolverKind::Gmres => 0.0,
        SolverKind::Cg => 0.25 * total_iterations as f64,
        _ => theorem2_extra_iterations_upper_bound(0.99998, 1e-4, 3941),
    }
}

/// The paper's convergence iteration counts at 2,048 processes, used
/// together with [`paper_baseline_seconds`] to calibrate `T_it`: Jacobi
/// 3,941 iterations, GMRES 5,875, CG 2,376 (§4.3 and §5.3).
pub fn paper_iteration_count(kind: SolverKind) -> usize {
    match kind {
        SolverKind::Gmres => 5875,
        SolverKind::Cg => 2376,
        _ => 3941,
    }
}

/// Regenerates Figure 7 for one MTTI.
pub fn expected_overhead(
    solvers: &[SolverKind],
    process_counts: &[usize],
    mtti_hours: f64,
    local_grid_edge: usize,
    pfs: &PfsModel,
    max_iterations: usize,
) -> Vec<ExpectedOverheadRow> {
    let lambda = 1.0 / (mtti_hours * 3600.0);
    let mut rows = Vec::new();
    for &kind in solvers {
        let times =
            checkpoint_recovery_times(kind, process_counts, local_grid_edge, pfs, max_iterations);
        let n_total = paper_iteration_count(kind);
        let t_it = paper_baseline_seconds(kind) / n_total as f64;
        for row in &times {
            let overhead = match row.strategy.as_str() {
                "lossy" => {
                    let n_extra = paper_n_extra(kind, n_total);
                    lossy_overhead_ratio(row.checkpoint_seconds, lambda, n_extra, t_it)
                }
                _ => traditional_overhead_ratio(row.checkpoint_seconds, lambda),
            };
            rows.push(ExpectedOverheadRow {
                processes: row.processes,
                solver: row.solver.clone(),
                strategy: row.strategy.clone(),
                mtti_hours,
                expected_overhead: overhead,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 10: experimental vs expected overhead
// ---------------------------------------------------------------------------

/// One bar of Figure 10: experimental and expected fault-tolerance overhead
/// for one solver under one scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultToleranceOverheadRow {
    /// Solver.
    pub solver: String,
    /// Scheme.
    pub strategy: String,
    /// Number of processes.
    pub processes: usize,
    /// Checkpoint interval used (seconds, from Young's formula).
    pub checkpoint_interval_seconds: f64,
    /// Measured (simulated-experiment) overhead fraction, averaged over runs.
    pub experimental_overhead: f64,
    /// Model-expected overhead fraction.
    pub expected_overhead: f64,
    /// Mean number of failures per run.
    pub mean_failures: f64,
    /// Mean number of convergence iterations (for Figure 8).
    pub mean_convergence_iterations: f64,
    /// Convergence iterations of the failure-free baseline.
    pub baseline_iterations: usize,
}

/// Configuration of the Figure 8/10 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadExperimentConfig {
    /// Number of simulated processes (the paper uses 2,048).
    pub processes: usize,
    /// Local grid edge of the solved instance.
    pub local_grid_edge: usize,
    /// Mean time to interruption in seconds (the paper uses 3,600).
    pub mtti_seconds: f64,
    /// Number of runs to average (the paper uses 10).
    pub runs: usize,
    /// Base random seed.
    pub seed: u64,
    /// Iteration cap per run.
    pub max_iterations: usize,
    /// Kernel thread count forwarded to [`RunConfig::num_threads`]
    /// (`0` inherits the process-wide setting).
    pub num_threads: usize,
}

impl Default for OverheadExperimentConfig {
    fn default() -> Self {
        OverheadExperimentConfig {
            processes: 2048,
            local_grid_edge: 10,
            mtti_seconds: 3600.0,
            runs: 10,
            seed: 20180611,
            max_iterations: 500_000,
            num_threads: 0,
        }
    }
}

/// Runs the Figure 10 experiment (which also yields the Figure 8 iteration
/// counts) for one solver under the three checkpointing schemes.
pub fn fault_tolerance_overhead(
    kind: SolverKind,
    cfg: &OverheadExperimentConfig,
    pfs: &PfsModel,
) -> Vec<FaultToleranceOverheadRow> {
    let workload = PaperWorkload::poisson(cfg.processes, cfg.local_grid_edge);
    let problem = workload.build();

    // Failure-free baseline: calibrate T_it so the simulated baseline time
    // matches the paper's reported baseline at this scale.
    let mut baseline_solver = workload.build_solver(&problem, kind, cfg.max_iterations);
    baseline_solver.run_to_convergence();
    let baseline_iterations = baseline_solver.iteration().max(1);
    let t_it = paper_baseline_seconds(kind) / baseline_iterations as f64;
    let cluster = ClusterConfig::bebop_like(cfg.processes, t_it);

    // Per-scheme checkpoint costs (for Young's interval and the model).
    let times = checkpoint_recovery_times(
        kind,
        &[cfg.processes],
        cfg.local_grid_edge,
        pfs,
        cfg.max_iterations,
    );

    let lambda = 1.0 / cfg.mtti_seconds;
    let mut rows = Vec::new();
    for time_row in &times {
        let strategy = match time_row.strategy.as_str() {
            "traditional" => CheckpointStrategy::Traditional,
            "lossless" => CheckpointStrategy::lossless_default(),
            _ => {
                if kind == SolverKind::Gmres {
                    CheckpointStrategy::lossy_gmres()
                } else {
                    CheckpointStrategy::lossy_default()
                }
            }
        };
        let interval_seconds =
            young_optimal_interval(cfg.mtti_seconds, time_row.checkpoint_seconds);
        let interval_iterations = young_optimal_interval_iterations(
            cfg.mtti_seconds,
            time_row.checkpoint_seconds,
            t_it,
        )
        .min(baseline_iterations.max(2) / 2)
        .max(1);

        let mut total_overhead = 0.0;
        let mut total_failures = 0.0;
        let mut total_iters = 0.0;
        for run in 0..cfg.runs {
            let mut solver = workload.build_solver(&problem, kind, cfg.max_iterations);
            let run_cfg = RunConfig {
                strategy: strategy.clone(),
                checkpoint_interval_iterations: interval_iterations,
                anchor_interval_snapshots: 0,
                cluster,
                pfs: *pfs,
                level: CheckpointLevel::Pfs,
                mtti_seconds: cfg.mtti_seconds,
                failure_seed: Some(cfg.seed + run as u64 * 7919),
                max_failures: 1000,
                max_executed_iterations: cfg.max_iterations,
                num_threads: cfg.num_threads,
                persistence: Persistence::InMemory,
                backend: ExecutionBackend::Simulated,
            };
            let report: RunReport =
                FaultTolerantRunner::new(run_cfg).run(solver.as_mut(), &problem);
            total_overhead += report.overhead_ratio();
            total_failures += report.failures as f64;
            total_iters += report.convergence_iterations as f64;
        }

        let expected = match time_row.strategy.as_str() {
            "lossy" => lossy_overhead_ratio(
                time_row.checkpoint_seconds,
                lambda,
                paper_n_extra(kind, baseline_iterations),
                t_it,
            ),
            _ => traditional_overhead_ratio(time_row.checkpoint_seconds, lambda),
        };

        rows.push(FaultToleranceOverheadRow {
            solver: kind.name().to_string(),
            strategy: time_row.strategy.clone(),
            processes: cfg.processes,
            checkpoint_interval_seconds: interval_seconds,
            experimental_overhead: total_overhead / cfg.runs as f64,
            expected_overhead: expected,
            mean_failures: total_failures / cfg.runs as f64,
            mean_convergence_iterations: total_iters / cfg.runs as f64,
            baseline_iterations,
        });
    }
    rows
}

/// Convenience: the paper's tolerance for a solver kind, re-exported here so
/// the bench binaries can report it alongside the rows.
pub fn tolerance_for(kind: SolverKind) -> f64 {
    paper_rtol(kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ratios_are_ordered() {
        let w = PaperWorkload::poisson(256, 12);
        let p = w.build();
        let r = measure_strategy_ratios(&w, &p, SolverKind::Jacobi, 200_000);
        assert!(r.lossless >= 1.0, "lossless ratio {}", r.lossless);
        assert!(r.lossy > r.lossless, "lossy {} vs lossless {}", r.lossy, r.lossless);
        assert!(r.lossy > 3.0);
        assert!(r.lossy_delta >= 1.0, "delta-chain factor {}", r.lossy_delta);
    }

    #[test]
    fn table3_shape_matches_paper() {
        let rows = table3(
            &[SolverKind::Jacobi, SolverKind::Cg],
            &[256, 2048],
            12,
            200_000,
        );
        assert_eq!(rows.len(), 4);
        let jacobi_256 = &rows[0];
        assert_eq!(jacobi_256.solver, "jacobi");
        assert_eq!(jacobi_256.processes, 256);
        assert_eq!(jacobi_256.problem_edge, 1088);
        // Table 3: traditional Jacobi ≈38.4 MB/process at 256 procs.
        assert!((jacobi_256.traditional_mb - 38.4).abs() < 2.0);
        assert!(jacobi_256.lossless_mb < jacobi_256.traditional_mb);
        assert!(jacobi_256.lossy_mb < jacobi_256.lossless_mb);
        assert!(
            jacobi_256.lossy_delta_mb <= jacobi_256.lossy_mb,
            "delta chain must not expand the lossy checkpoints: {} vs {}",
            jacobi_256.lossy_delta_mb,
            jacobi_256.lossy_mb
        );

        // CG traditional checkpoints are twice the Jacobi size (x and p).
        let cg_256 = rows.iter().find(|r| r.solver == "cg" && r.processes == 256).unwrap();
        assert!((cg_256.traditional_mb / jacobi_256.traditional_mb - 2.0).abs() < 0.1);
    }

    #[test]
    fn checkpoint_times_scale_and_order_correctly() {
        let pfs = PfsModel::bebop_like();
        let rows =
            checkpoint_recovery_times(SolverKind::Jacobi, &[256, 2048], 12, &pfs, 200_000);
        assert_eq!(rows.len(), 6);
        let trad_256 = rows
            .iter()
            .find(|r| r.strategy == "traditional" && r.processes == 256)
            .unwrap();
        let trad_2048 = rows
            .iter()
            .find(|r| r.strategy == "traditional" && r.processes == 2048)
            .unwrap();
        let lossy_2048 = rows
            .iter()
            .find(|r| r.strategy == "lossy" && r.processes == 2048)
            .unwrap();
        let lossless_2048 = rows
            .iter()
            .find(|r| r.strategy == "lossless" && r.processes == 2048)
            .unwrap();
        // Weak scaling: more processes → more data → longer checkpoints.
        assert!(trad_2048.checkpoint_seconds > trad_256.checkpoint_seconds);
        // Figure 4 ordering: lossy < lossless < traditional.
        assert!(lossy_2048.checkpoint_seconds < lossless_2048.checkpoint_seconds);
        assert!(lossless_2048.checkpoint_seconds < trad_2048.checkpoint_seconds);
        // Paper §3: the traditional checkpoint at 2,048 procs takes ≈120 s
        // (one 78.8 GB vector).
        assert!(
            (trad_2048.checkpoint_seconds - 120.0).abs() < 10.0,
            "traditional checkpoint at 2048 procs: {}",
            trad_2048.checkpoint_seconds
        );
        // Recovery is more expensive than checkpointing (static variables).
        assert!(trad_2048.recovery_seconds > trad_2048.checkpoint_seconds);
    }

    #[test]
    fn expected_overhead_prefers_lossy() {
        let pfs = PfsModel::bebop_like();
        let rows = expected_overhead(
            &[SolverKind::Gmres],
            &[2048],
            1.0,
            12,
            &pfs,
            200_000,
        );
        assert_eq!(rows.len(), 3);
        let get = |s: &str| {
            rows.iter()
                .find(|r| r.strategy == s)
                .unwrap()
                .expected_overhead
        };
        assert!(get("lossy") < get("lossless"));
        assert!(get("lossless") < get("traditional"));
        // Figure 7(a): traditional GMRES overhead at 2,048 procs and hourly
        // MTTI is in the tens of percent.
        assert!(get("traditional") > 0.15 && get("traditional") < 0.6);
    }

    #[test]
    fn paper_constants() {
        assert_eq!(paper_iteration_count(SolverKind::Gmres), 5875);
        assert!(paper_n_extra(SolverKind::Gmres, 1000) == 0.0);
        assert!(paper_n_extra(SolverKind::Cg, 1000) == 250.0);
        let jacobi_extra = paper_n_extra(SolverKind::Jacobi, 1000);
        assert!(jacobi_extra > 0.0 && jacobi_extra < 30.0);
        assert_eq!(tolerance_for(SolverKind::Cg), 1e-7);
        assert!((paper_baseline_seconds(SolverKind::Cg) - 2100.0).abs() < 1.0);
        assert_eq!(PAPER_PROCESS_COUNTS.len(), 8);
    }

    #[test]
    fn fault_tolerance_overhead_smoke() {
        // A miniature Figure-10 run: small problem, 2 runs, to keep the test
        // fast while exercising the full path.
        let cfg = OverheadExperimentConfig {
            processes: 2048,
            local_grid_edge: 6,
            mtti_seconds: 3600.0,
            runs: 2,
            seed: 1,
            max_iterations: 200_000,
            num_threads: 0,
        };
        let rows = fault_tolerance_overhead(SolverKind::Jacobi, &cfg, &PfsModel::bebop_like());
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.experimental_overhead >= 0.0);
            assert!(row.expected_overhead >= 0.0);
            assert!(row.checkpoint_interval_seconds > 0.0);
            assert!(row.baseline_iterations > 0);
            assert!(row.mean_convergence_iterations > 0.0);
        }
        // The lossy scheme should not be worse than traditional in the mean.
        let get = |s: &str| {
            rows.iter()
                .find(|r| r.strategy == s)
                .unwrap()
                .experimental_overhead
        };
        assert!(get("lossy") <= get("traditional") * 1.2 + 0.05);
    }
}
