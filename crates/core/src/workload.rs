//! The paper's workloads, scaled to a single node.
//!
//! The evaluation solves two kinds of systems:
//!
//! 1. the 3-D Poisson system of Equation 15, weak-scaled from 1088³
//!    unknowns at 256 processes to 2160³ at 2,048 processes (Table 3), with
//!    Jacobi, GMRES(30) and CG at relative tolerances 1e-4, 7e-5 and 1e-7;
//! 2. the SuiteSparse KKT240 matrix solved with GMRES + Jacobi
//!    preconditioning at tolerance 1e-6 (Figure 3).
//!
//! Neither global problem fits on one node, so a [`ScaledProblem`] carries
//! both the *local* system actually solved (a smaller instance of the same
//! matrix family, so convergence behaviour and compressibility are genuine)
//! and the *paper-scale* dimensions used by the rank/PFS model for
//! checkpoint-size and I/O-time accounting.  The scaling is purely about
//! bytes and seconds; no numerical short-cuts are taken.

use lcr_solvers::{
    BlockJacobiPreconditioner, ConjugateGradient, Gmres, IterativeMethod, JacobiPreconditioner,
    Jacobi, LinearSystem, Preconditioner, SolverKind, StoppingCriteria,
};
use lcr_sparse::kkt::{kkt_system, KktConfig};
use lcr_sparse::poisson::{manufactured_rhs, poisson3d, table3_grid_edge};
use lcr_sparse::Vector;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which of the paper's workloads to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// The 3-D Poisson weak-scaling workload (Table 3, Figures 4–10).
    Poisson3d,
    /// The synthetic KKT workload standing in for KKT240 (Figure 3).
    Kkt,
}

/// The paper's relative convergence tolerances (§5.1).
pub fn paper_rtol(kind: SolverKind) -> f64 {
    match kind {
        SolverKind::Jacobi | SolverKind::GaussSeidel | SolverKind::Sor | SolverKind::Ssor => 1e-4,
        SolverKind::Gmres => 7e-5,
        SolverKind::Cg => 1e-7,
        SolverKind::BiCgStab => 1e-6,
    }
}

/// A problem instance: the local system that is actually solved plus the
/// paper-scale dimensions used for checkpoint-size accounting.
#[derive(Debug, Clone)]
pub struct ScaledProblem {
    /// The local linear system solved on this node.
    pub system: LinearSystem,
    /// Exact solution of the local system (for validation).
    pub exact_solution: Vector,
    /// Number of simulated processes (the paper's 256–2,048).
    pub processes: usize,
    /// Global number of unknowns at paper scale (e.g. 2160³).
    pub paper_global_unknowns: usize,
    /// Local grid edge used for the solved system.
    pub local_grid_edge: usize,
}

impl ScaledProblem {
    /// Bytes of one paper-scale dynamic vector (8 bytes per unknown).
    pub fn paper_vector_bytes(&self) -> usize {
        self.paper_global_unknowns * std::mem::size_of::<f64>()
    }

    /// Per-process share of one paper-scale dynamic vector in bytes
    /// (Table 3's "checkpoint size per proc" unit for one vector).
    pub fn paper_vector_bytes_per_process(&self) -> f64 {
        self.paper_vector_bytes() as f64 / self.processes as f64
    }

    /// Scale factor between the paper-scale vector and the locally solved
    /// vector; multiply local byte counts by this to extrapolate to paper
    /// scale.
    pub fn byte_scale_factor(&self) -> f64 {
        self.paper_vector_bytes() as f64
            / (self.system.dim() * std::mem::size_of::<f64>()) as f64
    }

    /// Bytes of the paper-scale static variables (matrix + preconditioner +
    /// rhs), extrapolated from the local system's nnz-per-row density.
    pub fn paper_static_bytes(&self) -> usize {
        let local_unknowns = self.system.dim();
        let per_unknown = self.system.static_bytes() as f64 / local_unknowns as f64;
        (per_unknown * self.paper_global_unknowns as f64) as usize
    }
}

/// Builder for the paper's workloads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperWorkload {
    /// Which workload family.
    pub kind: WorkloadKind,
    /// Simulated process count (one of the paper's scales for Poisson).
    pub processes: usize,
    /// Edge length of the *local* grid actually solved.  The default of 20
    /// (8,000 unknowns for Poisson) keeps a full sweep of experiments in
    /// seconds; larger values sharpen the compression-ratio estimates.
    pub local_grid_edge: usize,
}

impl PaperWorkload {
    /// The Poisson workload at one of the paper's process counts.
    pub fn poisson(processes: usize, local_grid_edge: usize) -> Self {
        PaperWorkload {
            kind: WorkloadKind::Poisson3d,
            processes,
            local_grid_edge,
        }
    }

    /// The KKT workload (Figure 3) at a given process count.
    pub fn kkt(processes: usize, local_grid_edge: usize) -> Self {
        PaperWorkload {
            kind: WorkloadKind::Kkt,
            processes,
            local_grid_edge,
        }
    }

    /// Builds the scaled problem.
    ///
    /// # Panics
    /// Panics if `processes` or `local_grid_edge` is zero.
    pub fn build(&self) -> ScaledProblem {
        assert!(self.processes > 0, "need at least one process");
        assert!(self.local_grid_edge > 1, "local grid must be at least 2");
        match self.kind {
            WorkloadKind::Poisson3d => {
                let a = poisson3d(self.local_grid_edge);
                let (xstar, b) = manufactured_rhs(&a);
                // Paper-scale grid edge: the Table 3 entry if the process
                // count matches, otherwise weak-scale 1088³·(p/256).
                let paper_edge = table3_grid_edge(self.processes).unwrap_or_else(|| {
                    let base = 1088.0f64.powi(3) * self.processes as f64 / 256.0;
                    base.cbrt().round() as usize
                });
                let system = LinearSystem::new(a, b);
                // Finalize: the SpMV plan is part of the problem, built
                // once here rather than inside the first timed iteration.
                system.a.plan();
                ScaledProblem {
                    system,
                    exact_solution: xstar,
                    processes: self.processes,
                    paper_global_unknowns: paper_edge * paper_edge * paper_edge,
                    local_grid_edge: self.local_grid_edge,
                }
            }
            WorkloadKind::Kkt => {
                let cfg = KktConfig {
                    grid_n: self.local_grid_edge,
                    ..KktConfig::default()
                };
                let (k, xstar, b) = kkt_system(&cfg);
                // KKT240 has ≈27.9 million equations.
                let paper_unknowns = 27_993_600;
                let system = LinearSystem::new(k, b);
                system.a.plan();
                ScaledProblem {
                    system,
                    exact_solution: xstar,
                    processes: self.processes,
                    paper_global_unknowns: paper_unknowns,
                    local_grid_edge: self.local_grid_edge,
                }
            }
        }
    }

    /// Builds the solver the paper uses for this workload and solver kind,
    /// with the paper's tolerance, preconditioner and restart settings.
    ///
    /// # Panics
    /// Panics for solver kinds the paper does not pair with this workload
    /// (e.g. CG on the indefinite KKT system).
    pub fn build_solver(
        &self,
        problem: &ScaledProblem,
        kind: SolverKind,
        max_iterations: usize,
    ) -> Box<dyn IterativeMethod> {
        let criteria = StoppingCriteria::new(paper_rtol(kind), max_iterations);
        let n = problem.system.dim();
        let x0 = Vector::zeros(n);
        match (self.kind, kind) {
            (WorkloadKind::Poisson3d, SolverKind::Jacobi) => {
                Box::new(Jacobi::new(problem.system.clone(), x0, criteria))
            }
            (WorkloadKind::Poisson3d, SolverKind::Cg) => {
                // The paper's Poisson matrix is negative definite; CG needs
                // an SPD operator, so solve the equivalent negated system.
                let mut a = (*problem.system.a).clone();
                for v in a.values_mut() {
                    *v = -*v;
                }
                let mut b = (*problem.system.b).clone();
                b.scale(-1.0);
                let system = LinearSystem::new(a, b);
                let pre: Arc<dyn Preconditioner> = Arc::new(
                    BlockJacobiPreconditioner::new(&system.a, 16.min(n))
                        .expect("block Jacobi on SPD Poisson"),
                );
                Box::new(ConjugateGradient::new(system, pre, x0, criteria))
            }
            (WorkloadKind::Poisson3d, SolverKind::Gmres) => {
                let pre: Arc<dyn Preconditioner> = Arc::new(
                    BlockJacobiPreconditioner::new(&problem.system.a, 16.min(n))
                        .expect("block Jacobi on Poisson"),
                );
                Box::new(Gmres::new(problem.system.clone(), pre, x0, 30, criteria))
            }
            (WorkloadKind::Kkt, SolverKind::Gmres) => {
                let pre: Arc<dyn Preconditioner> = Arc::new(
                    JacobiPreconditioner::new(&problem.system.a)
                        .expect("Jacobi preconditioner on KKT"),
                );
                Box::new(Gmres::new(problem.system.clone(), pre, x0, 30, criteria))
            }
            (workload, solver) => panic!(
                "the paper does not evaluate {solver:?} on the {workload:?} workload"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tolerances() {
        assert_eq!(paper_rtol(SolverKind::Jacobi), 1e-4);
        assert_eq!(paper_rtol(SolverKind::Gmres), 7e-5);
        assert_eq!(paper_rtol(SolverKind::Cg), 1e-7);
    }

    #[test]
    fn poisson_workload_dimensions() {
        let w = PaperWorkload::poisson(2048, 8);
        let p = w.build();
        assert_eq!(p.system.dim(), 512);
        assert_eq!(p.paper_global_unknowns, 2160 * 2160 * 2160);
        // Table 3: one vector is ≈39.4 MB per process at 2,048 processes.
        let mb = p.paper_vector_bytes_per_process() / 1e6;
        assert!((mb - 39.4).abs() < 1.0, "per-process vector {mb:.1} MB");
        assert!(p.byte_scale_factor() > 1e6);
        assert!(p.paper_static_bytes() > p.paper_vector_bytes());
    }

    #[test]
    fn poisson_256_matches_table3_first_row() {
        let p = PaperWorkload::poisson(256, 8).build();
        assert_eq!(p.paper_global_unknowns, 1088 * 1088 * 1088);
        let mb = p.paper_vector_bytes_per_process() / 1e6;
        assert!((mb - 38.4).abs() < 2.0, "per-process vector {mb:.1} MB");
    }

    #[test]
    fn unknown_process_count_weak_scales() {
        let p = PaperWorkload::poisson(4096, 6).build();
        // Roughly double the unknowns of the 2,048-process case.
        let ratio = p.paper_global_unknowns as f64 / (2160.0f64.powi(3));
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio:.2}");
    }

    #[test]
    fn kkt_workload_builds_indefinite_system() {
        let w = PaperWorkload::kkt(4096, 5);
        let p = w.build();
        assert!(p.system.a.is_symmetric(1e-12));
        assert_eq!(p.paper_global_unknowns, 27_993_600);
        let r = p.system.a.residual(&p.exact_solution, &p.system.b);
        assert!(r.norm2() < 1e-8 * p.system.b.norm2().max(1.0));
    }

    #[test]
    fn solver_factory_builds_converging_solvers() {
        let w = PaperWorkload::poisson(256, 6);
        let p = w.build();
        for kind in [SolverKind::Jacobi, SolverKind::Cg, SolverKind::Gmres] {
            let mut solver = w.build_solver(&p, kind, 200_000);
            solver.run_to_convergence();
            assert!(solver.converged(), "{kind:?} did not converge");
            assert!(!solver.history().limit_reached, "{kind:?} hit the limit");
        }
    }

    #[test]
    fn kkt_gmres_solver_converges() {
        let w = PaperWorkload::kkt(4096, 4);
        let p = w.build();
        let mut solver = w.build_solver(&p, SolverKind::Gmres, 100_000);
        solver.run_to_convergence();
        assert!(solver.converged());
        let rel_residual = p.system.a.residual(solver.solution(), &p.system.b).norm2()
            / p.system.b.norm2();
        assert!(rel_residual < 1e-2, "relative residual {rel_residual}");
    }

    #[test]
    #[should_panic(expected = "does not evaluate")]
    fn unsupported_pairing_panics() {
        let w = PaperWorkload::kkt(256, 4);
        let p = w.build();
        let _ = w.build_solver(&p, SolverKind::Cg, 100);
    }
}
