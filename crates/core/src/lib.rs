//! # lcr-core
//!
//! The primary contribution of *"Improving Performance of Iterative Methods
//! by Lossy Checkpointing"* (Tao et al., HPDC 2018), assembled from the
//! substrate crates of this workspace:
//!
//! * [`strategy`] — the three checkpointing schemes the paper compares:
//!   **traditional** (raw dynamic variables), **lossless** (Gzip-like
//!   compression) and **lossy** (SZ-style error-bounded compression), plus a
//!   no-checkpointing baseline.  The lossy strategy implements the paper's
//!   per-method error-bound policy: a fixed point-wise relative bound for
//!   Jacobi/CG and the adaptive `‖r‖/‖b‖` bound of Theorem 3 for GMRES.
//! * [`encoding`] — the anchored temporal-delta selector: between forced
//!   anchor checkpoints the SZ-backed lossy strategy may encode a
//!   checkpoint as a delta against the previous one's quantization codes,
//!   shrinking the stream; recovery replays the chain from the anchor.
//! * [`runner`] — the fault-tolerant execution driver: it interleaves real
//!   solver iterations with checkpoints at a configurable interval, injects
//!   exponential fail-stop failures on the simulated clock, performs
//!   recoveries (exact restore for traditional/lossless, restart-from-`x`
//!   for lossy, per Algorithms 1 and 2), and accounts every second of
//!   compute, compression, I/O and rollback.
//! * [`sharded`] — the *real* (non-simulated) execution backend: the
//!   global system is domain-decomposed into pool-isolated shards running
//!   concurrently in-process with channel-based halo exchange, per-shard
//!   SZ checkpoint segments under a coordinated epoch commit, and
//!   per-shard crash recovery (only the failed shard rolls back).
//! * [`impact`] — the §4.4.3 experiment behind Figure 2: the average number
//!   of extra CG iterations caused by one lossy recovery as a function of
//!   the relative error bound.
//! * [`workload`] — builders for the paper's workloads (3-D Poisson
//!   weak-scaling grid, synthetic KKT system) with the paper's tolerances
//!   and preconditioners, and the mapping from simulated process counts to
//!   host-sized problems.
//! * [`experiment`] — the experiment harness that regenerates every table
//!   and figure of the evaluation section (Table 3, Figures 1–10), emitting
//!   machine-readable rows the `lcr-bench` binaries print.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encoding;
pub mod experiment;
pub mod impact;
pub mod runner;
pub mod sharded;
pub mod strategy;
pub mod workload;

pub use encoding::TemporalEncodingSelector;
pub use experiment::{
    CheckpointTimeRow, ExpectedOverheadRow, FaultToleranceOverheadRow, Table3Row,
};
pub use runner::{ExecutionBackend, FaultTolerantRunner, RunConfig, RunReport};
pub use sharded::{
    run_sharded, EpochRecord, KillSpec, ShardStats, ShardedReport, ShardedRunConfig,
};
pub use strategy::{CheckpointStrategy, ErrorBoundPolicy, RecoveryMode};
pub use workload::{PaperWorkload, ScaledProblem, WorkloadKind};
