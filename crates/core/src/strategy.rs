//! Checkpoint encoding strategies: traditional, lossless and lossy.
//!
//! A strategy decides (a) *which* dynamic variables are saved, (b) *how*
//! their bytes are encoded, and (c) *how* the solver is brought back to
//! life from those bytes:
//!
//! | scheme       | saved variables            | encoding           | recovery |
//! |--------------|----------------------------|--------------------|----------|
//! | traditional  | all dynamic vars (Alg. 1)  | raw IEEE-754       | exact [`RecoveryMode::Exact`] |
//! | lossless     | all dynamic vars           | FPC + LZSS         | exact |
//! | lossy        | only `x` (+ counter)       | SZ, error-bounded  | restart from `x` (Alg. 2), [`RecoveryMode::Restart`] |
//!
//! The lossy strategy's error bound follows the paper's per-method policy
//! ([`ErrorBoundPolicy`]): a fixed point-wise relative bound (10⁻⁴ by
//! default) for the stationary methods and CG, and the adaptive
//! `‖r‖/‖b‖` bound of Theorem 3 for GMRES.

use crate::encoding::TemporalEncodingSelector;
use lcr_ckpt::CheckpointBuffer;
use lcr_compress::{
    Compressed, DeltaMode, ErrorBound, FpcCodec, LosslessCompressor, LosslessPipeline,
    LossyCompressor, LzssCodec, SzCompressor, ZfpCompressor,
};
use lcr_perfmodel::theorem3_gmres_error_bound;
use lcr_solvers::{DynamicState, IterativeMethod};
use lcr_sparse::Vector;
use serde::{Deserialize, Serialize};

/// How the error bound for a lossy checkpoint is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ErrorBoundPolicy {
    /// A fixed bound used for every checkpoint (the paper's 10⁻⁴ relative
    /// bound for Jacobi and CG).
    Fixed(ErrorBound),
    /// Theorem 3's adaptive bound for GMRES: the point-wise relative bound
    /// is `safety·‖r‖/‖b‖`, clamped to `[min_bound, max_bound]`.
    AdaptiveGmres {
        /// Multiplier on the relative residual.
        safety: f64,
        /// Smallest bound the policy will emit.
        min_bound: f64,
        /// Largest bound the policy will emit.
        max_bound: f64,
    },
}

impl ErrorBoundPolicy {
    /// The paper's default for stationary methods and CG.
    pub fn fixed_relative(eb: f64) -> Self {
        ErrorBoundPolicy::Fixed(ErrorBound::PointwiseRel(eb))
    }

    /// The paper's Theorem-3 policy for GMRES.
    pub fn adaptive_gmres() -> Self {
        ErrorBoundPolicy::AdaptiveGmres {
            safety: 1.0,
            min_bound: 1e-12,
            max_bound: 1e-2,
        }
    }

    /// Resolves the bound for the current solver state.
    pub fn resolve(&self, solver: &dyn IterativeMethod) -> ErrorBound {
        match *self {
            ErrorBoundPolicy::Fixed(bound) => bound,
            ErrorBoundPolicy::AdaptiveGmres {
                safety,
                min_bound,
                max_bound,
            } => ErrorBound::PointwiseRel(theorem3_gmres_error_bound(
                solver.residual_norm(),
                solver.reference_norm(),
                safety,
                min_bound,
                max_bound,
            )),
        }
    }
}

/// Which lossy compressor backs the lossy strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossyCodecKind {
    /// The SZ-style prediction-based compressor (the paper's choice for 1-D
    /// checkpoint vectors).
    Sz,
    /// The ZFP-style transform-based compressor (ablation).
    Zfp,
}

/// Which lossless compressor backs the lossless strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LosslessCodecKind {
    /// FPC followed by LZSS (the Gzip stand-in; default).
    Pipeline,
    /// FPC only.
    Fpc,
    /// LZSS only.
    Lzss,
}

/// How a strategy restores a solver from recovered payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryMode {
    /// Exact restore of every dynamic variable (Algorithm 1 lines 7–8).
    Exact,
    /// Restart from the (possibly distorted) solution vector only
    /// (Algorithm 2 lines 8–13).
    Restart,
}

/// A checkpoint strategy: variable selection + encoding + recovery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CheckpointStrategy {
    /// No checkpointing at all (failure-free baseline, or "restart from
    /// scratch" under failures).
    None,
    /// The paper's traditional checkpointing: raw dynamic variables.
    Traditional,
    /// Lossless-compressed checkpointing (the Gzip baseline).
    Lossless {
        /// Which lossless codec to use.
        codec: LosslessCodecKind,
    },
    /// The paper's lossy checkpointing scheme.
    Lossy {
        /// Which lossy codec to use.
        codec: LossyCodecKind,
        /// How the error bound is chosen per checkpoint.
        policy: ErrorBoundPolicy,
    },
}

/// The encoded form of one checkpoint, ready to hand to the FTI layer.
#[derive(Debug, Clone)]
pub struct EncodedCheckpoint {
    /// Encoded payload per variable (name, bytes).
    pub payloads: Vec<(String, Vec<u8>)>,
    /// Uncompressed size of the vector payload in bytes.
    pub original_bytes: usize,
    /// The iteration the state was captured at.
    pub iteration: usize,
    /// Scalars captured alongside (stored in the metadata payload).
    pub scalars: Vec<(String, f64)>,
}

impl EncodedCheckpoint {
    /// Total encoded bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.payloads.iter().map(|(_, b)| b.len()).sum()
    }
}

/// Metadata of a checkpoint whose payloads were encoded directly into a
/// [`CheckpointBuffer`] (the zero-copy counterpart of
/// [`EncodedCheckpoint`]; the bytes live in the buffer).
#[derive(Debug, Clone)]
pub struct EncodedCheckpointMeta {
    /// Uncompressed size of the vector payload in bytes.
    pub original_bytes: usize,
    /// The iteration the state was captured at.
    pub iteration: usize,
    /// Scalars captured alongside (stored in the metadata payload).
    pub scalars: Vec<(String, f64)>,
}

/// Errors from encoding/decoding checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategyError {
    /// The underlying compressor failed.
    Compression(String),
    /// A payload required for recovery is missing or malformed.
    Malformed(String),
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyError::Compression(msg) => write!(f, "compression error: {msg}"),
            StrategyError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for StrategyError {}

impl CheckpointStrategy {
    /// The paper's default lossy strategy for stationary methods and CG
    /// (SZ, fixed 10⁻⁴ point-wise relative bound).
    pub fn lossy_default() -> Self {
        CheckpointStrategy::Lossy {
            codec: LossyCodecKind::Sz,
            policy: ErrorBoundPolicy::fixed_relative(1e-4),
        }
    }

    /// The paper's lossy strategy for GMRES (SZ, Theorem-3 adaptive bound).
    pub fn lossy_gmres() -> Self {
        CheckpointStrategy::Lossy {
            codec: LossyCodecKind::Sz,
            policy: ErrorBoundPolicy::adaptive_gmres(),
        }
    }

    /// The lossless baseline with the default (FPC+LZSS) codec.
    pub fn lossless_default() -> Self {
        CheckpointStrategy::Lossless {
            codec: LosslessCodecKind::Pipeline,
        }
    }

    /// Short name used in reports ("none", "traditional", "lossless",
    /// "lossy").
    pub fn name(&self) -> &'static str {
        match self {
            CheckpointStrategy::None => "none",
            CheckpointStrategy::Traditional => "traditional",
            CheckpointStrategy::Lossless { .. } => "lossless",
            CheckpointStrategy::Lossy { .. } => "lossy",
        }
    }

    /// Whether this strategy can rebuild a solver from a durable checkpoint
    /// written under `tag` (a [`CheckpointStrategy::name`] recorded in the
    /// on-disk header): payload layouts differ per scheme family, so only a
    /// matching name is decodable.  Codec mismatches *within* a family
    /// (e.g. SZ bytes decoded as ZFP) are caught by the decoder itself and
    /// surface as a [`StrategyError`] from [`CheckpointStrategy::recover`].
    pub fn can_recover_from(&self, tag: &str) -> bool {
        !matches!(self, CheckpointStrategy::None) && tag == self.name()
    }

    /// Whether this strategy saves the full dynamic state (exact recovery)
    /// or only the solution vector (restart recovery).
    pub fn recovery_mode(&self) -> RecoveryMode {
        match self {
            CheckpointStrategy::Lossy { .. } => RecoveryMode::Restart,
            _ => RecoveryMode::Exact,
        }
    }

    fn lossy_codec(kind: LossyCodecKind) -> Box<dyn LossyCompressor> {
        match kind {
            LossyCodecKind::Sz => Box::new(SzCompressor::new()),
            LossyCodecKind::Zfp => Box::new(ZfpCompressor::new()),
        }
    }

    fn lossless_codec(kind: LosslessCodecKind) -> Box<dyn LosslessCompressor> {
        match kind {
            LosslessCodecKind::Pipeline => Box::new(LosslessPipeline::new()),
            LosslessCodecKind::Fpc => Box::new(FpcCodec::new()),
            LosslessCodecKind::Lzss => Box::new(LzssCodec::new()),
        }
    }

    /// Encodes the solver's dynamic state into checkpoint payloads.
    ///
    /// Allocating convenience wrapper around
    /// [`CheckpointStrategy::encode_into`]; the runner's hot path uses the
    /// buffer variant directly.
    ///
    /// # Errors
    /// Returns [`StrategyError::Compression`] if a codec fails.
    pub fn encode(
        &self,
        solver: &dyn IterativeMethod,
    ) -> Result<EncodedCheckpoint, StrategyError> {
        let mut buffer = CheckpointBuffer::new();
        let meta = self.encode_into(solver, &mut buffer)?;
        Ok(EncodedCheckpoint {
            payloads: buffer.to_payloads(),
            original_bytes: meta.original_bytes,
            iteration: meta.iteration,
            scalars: meta.scalars,
        })
    }

    /// Encodes the solver's dynamic state directly into a reusable
    /// [`CheckpointBuffer`] (cleared first) — the zero-copy checkpoint
    /// path: compressors append to the buffer arena through their
    /// `compress_into` entry points, so no intermediate per-variable
    /// `Vec<u8>` is built or copied.
    ///
    /// * `Traditional` and `Lossless` capture every dynamic variable
    ///   (Algorithm 1 line 4).
    /// * `Lossy` captures only the solution vector `x` (Algorithm 2
    ///   lines 4–5) and compresses it under the policy's error bound.
    ///
    /// # Errors
    /// Returns [`StrategyError::Compression`] if a codec fails.
    pub fn encode_into(
        &self,
        solver: &dyn IterativeMethod,
        buffer: &mut CheckpointBuffer,
    ) -> Result<EncodedCheckpointMeta, StrategyError> {
        buffer.clear();
        match self {
            CheckpointStrategy::None => {
                let state = solver.capture_state();
                Ok(EncodedCheckpointMeta {
                    original_bytes: 0,
                    iteration: state.iteration,
                    scalars: state.scalars,
                })
            }
            CheckpointStrategy::Traditional => {
                let state = solver.capture_state();
                let original_bytes = state.vector_bytes();
                for (name, v) in &state.vectors {
                    buffer.push_with(name, |out| {
                        out.reserve(v.len() * 8);
                        for x in v.iter() {
                            out.extend_from_slice(&x.to_le_bytes());
                        }
                    });
                }
                Ok(EncodedCheckpointMeta {
                    original_bytes,
                    iteration: state.iteration,
                    scalars: state.scalars,
                })
            }
            CheckpointStrategy::Lossless { codec } => {
                let codec = Self::lossless_codec(*codec);
                let state = solver.capture_state();
                let original_bytes = state.vector_bytes();
                for (name, v) in &state.vectors {
                    buffer
                        .push_with(name, |out| {
                            Self::frame_into(out, v.len(), |out| {
                                codec.compress_into(v.as_slice(), out).map(|_| ())
                            })
                        })
                        .map_err(|e| StrategyError::Compression(e.to_string()))?;
                }
                Ok(EncodedCheckpointMeta {
                    original_bytes,
                    iteration: state.iteration,
                    scalars: state.scalars,
                })
            }
            CheckpointStrategy::Lossy { codec, policy } => {
                let bound = policy.resolve(solver);
                let codec = Self::lossy_codec(*codec);
                // Only x is checkpointed under the lossy scheme — taken
                // from the captured state, not `solution()`, because some
                // solvers (GMRES) fold a partial correction into the
                // checkpointed x that the raw solution vector lacks.
                let state = solver.capture_state();
                let x = state
                    .vector("x")
                    .ok_or_else(|| StrategyError::Malformed("dynamic state lacks x".into()))?;
                let original_bytes = x.len() * std::mem::size_of::<f64>();
                buffer
                    .push_with("x", |out| {
                        Self::frame_into(out, x.len(), |out| {
                            codec.compress_into(x.as_slice(), bound, out).map(|_| ())
                        })
                    })
                    .map_err(|e| StrategyError::Compression(e.to_string()))?;
                Ok(EncodedCheckpointMeta {
                    original_bytes,
                    iteration: state.iteration,
                    scalars: Vec::new(),
                })
            }
        }
    }

    /// [`CheckpointStrategy::encode_into`] with anchored temporal-delta
    /// support: for the SZ-backed lossy strategy the solution vector may
    /// be encoded as a temporal delta against the previous checkpoint's
    /// quantization codes (retained in `selector`), whenever the selector
    /// allows it *and* the delta stream actually comes out smaller.
    ///
    /// Returns the checkpoint metadata plus the delta order actually
    /// chosen — `None` for a self-contained anchor (always the case for
    /// non-SZ strategies and disabled selectors), `Some(1 | 2)` for a
    /// delta that must be committed with a matching base link in the
    /// checkpoint store.
    ///
    /// # Errors
    /// Returns [`StrategyError::Compression`] if a codec fails; the
    /// selector state is then stale and must be
    /// [reset](TemporalEncodingSelector::reset) by the caller.
    pub fn encode_temporal_into(
        &self,
        solver: &dyn IterativeMethod,
        buffer: &mut CheckpointBuffer,
        selector: &mut TemporalEncodingSelector,
    ) -> Result<(EncodedCheckpointMeta, Option<u8>), StrategyError> {
        // Only the SZ-backed lossy strategy has a temporal encoder;
        // everything else always writes self-contained anchors.
        let CheckpointStrategy::Lossy {
            codec: LossyCodecKind::Sz,
            policy,
        } = self
        else {
            return self.encode_into(solver, buffer).map(|meta| (meta, None));
        };
        if !selector.delta_enabled() {
            return self.encode_into(solver, buffer).map(|meta| (meta, None));
        }

        buffer.clear();
        let bound = policy.resolve(solver);
        let force_anchor = selector.begin_snapshot();
        let max_order = selector.max_order();
        let sz = SzCompressor::new();
        let state = solver.capture_state();
        let x = state
            .vector("x")
            .ok_or_else(|| StrategyError::Malformed("dynamic state lacks x".into()))?;
        let original_bytes = x.len() * std::mem::size_of::<f64>();
        let temporal = selector.state_for("x");
        let mut mode = DeltaMode::None;
        buffer
            .push_with("x", |out| {
                Self::frame_into(out, x.len(), |out| {
                    sz.compress_temporal_into(
                        x.as_slice(),
                        bound,
                        max_order,
                        force_anchor,
                        temporal,
                        out,
                    )
                    .map(|chosen| mode = chosen)
                })
            })
            .map_err(|e| StrategyError::Compression(e.to_string()))?;
        let delta_order = match mode {
            DeltaMode::None => None,
            chosen => Some(chosen as u8),
        };
        Ok((
            EncodedCheckpointMeta {
                original_bytes,
                iteration: state.iteration,
                scalars: Vec::new(),
            },
            delta_order,
        ))
    }

    fn bytes_to_vector(bytes: &[u8]) -> Result<Vector, StrategyError> {
        if !bytes.len().is_multiple_of(8) {
            return Err(StrategyError::Malformed(
                "raw vector payload length not a multiple of 8".into(),
            ));
        }
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect())
    }

    /// Writes the element-count frame prefix, then lets `encode` append the
    /// compressed blob, so decoding stays self-contained.
    fn frame_into<E>(
        out: &mut Vec<u8>,
        n_elements: usize,
        encode: impl FnOnce(&mut Vec<u8>) -> Result<(), E>,
    ) -> Result<(), E> {
        out.extend_from_slice(&(n_elements as u64).to_le_bytes());
        encode(out)
    }

    fn unframe(bytes: &[u8]) -> Result<Compressed, StrategyError> {
        if bytes.len() < 8 {
            return Err(StrategyError::Malformed("framed payload too short".into()));
        }
        let n_elements =
            u64::from_le_bytes(bytes[..8].try_into().expect("8-byte prefix")) as usize;
        Ok(Compressed {
            bytes: bytes[8..].to_vec(),
            n_elements,
        })
    }

    /// Decodes recovered payloads and applies them to the solver:
    /// exact-restore for traditional/lossless, restart-from-`x` for lossy
    /// (the recovery sides of Algorithms 1 and 2).
    ///
    /// # Errors
    /// Returns [`StrategyError`] if payloads are missing or undecodable.
    pub fn recover(
        &self,
        solver: &mut dyn IterativeMethod,
        payloads: &[(String, Vec<u8>)],
        iteration: usize,
        scalars: &[(String, f64)],
    ) -> Result<(), StrategyError> {
        match self {
            CheckpointStrategy::None => Err(StrategyError::Malformed(
                "the no-checkpoint strategy cannot recover".into(),
            )),
            CheckpointStrategy::Traditional => {
                let vectors = payloads
                    .iter()
                    .map(|(name, bytes)| Ok((name.clone(), Self::bytes_to_vector(bytes)?)))
                    .collect::<Result<Vec<_>, StrategyError>>()?;
                solver.restore_state(&DynamicState {
                    iteration,
                    scalars: scalars.to_vec(),
                    vectors,
                });
                Ok(())
            }
            CheckpointStrategy::Lossless { codec } => {
                let codec = Self::lossless_codec(*codec);
                let vectors = payloads
                    .iter()
                    .map(|(name, bytes)| {
                        let compressed = Self::unframe(bytes)?;
                        let data = codec
                            .decompress(&compressed)
                            .map_err(|e| StrategyError::Compression(e.to_string()))?;
                        Ok((name.clone(), Vector::from_vec(data)))
                    })
                    .collect::<Result<Vec<_>, StrategyError>>()?;
                solver.restore_state(&DynamicState {
                    iteration,
                    scalars: scalars.to_vec(),
                    vectors,
                });
                Ok(())
            }
            CheckpointStrategy::Lossy { codec, .. } => {
                let codec = Self::lossy_codec(*codec);
                let (_, bytes) = payloads
                    .iter()
                    .find(|(name, _)| name == "x")
                    .ok_or_else(|| StrategyError::Malformed("lossy checkpoint lacks x".into()))?;
                let compressed = Self::unframe(bytes)?;
                let x = codec
                    .decompress(&compressed)
                    .map_err(|e| StrategyError::Compression(e.to_string()))?;
                solver.restart_from_solution(Vector::from_vec(x), iteration);
                Ok(())
            }
        }
    }

    /// Chain-aware counterpart of [`CheckpointStrategy::recover`]: applies
    /// a recovered checkpoint *chain* (anchor first, the recovered
    /// checkpoint last) to the solver.  Single-link chains delegate to
    /// [`CheckpointStrategy::recover`] unchanged; multi-link chains are
    /// replayed through the SZ temporal decoder, which reconstructs the
    /// final solution vector bit-identically to what a direct (anchor)
    /// decode of that checkpoint would have produced.
    ///
    /// # Errors
    /// Returns [`StrategyError`] if the chain is empty, a payload is
    /// missing or undecodable, or a multi-link chain reaches a strategy
    /// whose checkpoints are always self-contained.
    pub fn recover_chain(
        &self,
        solver: &mut dyn IterativeMethod,
        chain: &[Vec<(String, Vec<u8>)>],
        iteration: usize,
        scalars: &[(String, f64)],
    ) -> Result<(), StrategyError> {
        let Some(last) = chain.last() else {
            return Err(StrategyError::Malformed("empty checkpoint chain".into()));
        };
        if chain.len() == 1 {
            return self.recover(solver, last, iteration, scalars);
        }
        let CheckpointStrategy::Lossy {
            codec: LossyCodecKind::Sz,
            ..
        } = self
        else {
            return Err(StrategyError::Malformed(format!(
                "{} checkpoints are self-contained, but a {}-link chain was recovered",
                self.name(),
                chain.len()
            )));
        };
        let links = chain
            .iter()
            .map(|payloads| {
                let (_, bytes) = payloads
                    .iter()
                    .find(|(name, _)| name == "x")
                    .ok_or_else(|| StrategyError::Malformed("lossy checkpoint lacks x".into()))?;
                Self::unframe(bytes)
            })
            .collect::<Result<Vec<_>, StrategyError>>()?;
        let x = SzCompressor::new()
            .decompress_chain(&links)
            .map_err(|e| StrategyError::Compression(e.to_string()))?;
        solver.restart_from_solution(Vector::from_vec(x), iteration);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcr_solvers::{
        ConjugateGradient, Gmres, IterativeMethod, Jacobi, LinearSystem, StoppingCriteria,
    };
    use lcr_sparse::poisson::{manufactured_rhs, poisson2d};
    use lcr_sparse::Vector;

    fn spd_system(n: usize) -> LinearSystem {
        let mut a = poisson2d(n);
        for v in a.values_mut() {
            *v = -*v;
        }
        let (_, b) = manufactured_rhs(&a);
        LinearSystem::new(a, b)
    }

    fn plain_system(n: usize) -> LinearSystem {
        let a = poisson2d(n);
        let (_, b) = manufactured_rhs(&a);
        LinearSystem::new(a, b)
    }

    #[test]
    fn names_and_recovery_modes() {
        assert_eq!(CheckpointStrategy::None.name(), "none");
        assert_eq!(CheckpointStrategy::Traditional.name(), "traditional");
        assert_eq!(CheckpointStrategy::lossless_default().name(), "lossless");
        assert_eq!(CheckpointStrategy::lossy_default().name(), "lossy");
        assert!(CheckpointStrategy::Traditional.can_recover_from("traditional"));
        assert!(!CheckpointStrategy::Traditional.can_recover_from("lossy"));
        assert!(CheckpointStrategy::lossy_gmres().can_recover_from("lossy"));
        // The no-checkpoint strategy can never recover, even from its own tag.
        assert!(!CheckpointStrategy::None.can_recover_from("none"));
        assert_eq!(
            CheckpointStrategy::Traditional.recovery_mode(),
            RecoveryMode::Exact
        );
        assert_eq!(
            CheckpointStrategy::lossy_default().recovery_mode(),
            RecoveryMode::Restart
        );
    }

    #[test]
    fn traditional_encoding_saves_all_vectors_raw() {
        let sys = spd_system(8);
        let n = sys.dim();
        let mut cg = ConjugateGradient::unpreconditioned(
            sys,
            Vector::zeros(n),
            StoppingCriteria::new(1e-10, 1000),
        );
        for _ in 0..5 {
            cg.step();
        }
        let enc = CheckpointStrategy::Traditional.encode(&cg).unwrap();
        // CG checkpoints x and p; raw encoding is 8 bytes per element.
        assert_eq!(enc.payloads.len(), 2);
        assert_eq!(enc.encoded_bytes(), 2 * n * 8);
        assert_eq!(enc.original_bytes, 2 * n * 8);
        assert_eq!(enc.iteration, 5);
        assert!(enc.scalars.iter().any(|(name, _)| name == "rho"));
    }

    #[test]
    fn encode_into_matches_encode_for_every_strategy() {
        let sys = spd_system(8);
        let n = sys.dim();
        let mut cg = ConjugateGradient::unpreconditioned(
            sys,
            Vector::zeros(n),
            StoppingCriteria::new(1e-10, 1000),
        );
        for _ in 0..5 {
            cg.step();
        }
        let mut buffer = CheckpointBuffer::new();
        for strategy in [
            CheckpointStrategy::None,
            CheckpointStrategy::Traditional,
            CheckpointStrategy::lossless_default(),
            CheckpointStrategy::lossy_default(),
        ] {
            let enc = strategy.encode(&cg).unwrap();
            // The buffer is reused (not recreated) across strategies, as
            // the runner reuses it across checkpoints.
            let meta = strategy.encode_into(&cg, &mut buffer).unwrap();
            assert_eq!(meta.original_bytes, enc.original_bytes);
            assert_eq!(meta.iteration, enc.iteration);
            assert_eq!(meta.scalars, enc.scalars);
            assert_eq!(buffer.to_payloads(), enc.payloads, "{}", strategy.name());
        }
    }

    #[test]
    fn traditional_roundtrip_is_exact() {
        let sys = spd_system(8);
        let n = sys.dim();
        let mut cg = ConjugateGradient::unpreconditioned(
            sys.clone(),
            Vector::zeros(n),
            StoppingCriteria::new(1e-12, 1000),
        );
        for _ in 0..7 {
            cg.step();
        }
        let enc = CheckpointStrategy::Traditional.encode(&cg).unwrap();
        let reference_next: Vec<f64> = {
            let mut probe = ConjugateGradient::unpreconditioned(
                sys.clone(),
                Vector::zeros(n),
                StoppingCriteria::new(1e-12, 1000),
            );
            CheckpointStrategy::Traditional
                .recover(&mut probe, &enc.payloads, enc.iteration, &enc.scalars)
                .unwrap();
            (0..3)
                .map(|_| {
                    probe.step();
                    probe.residual_norm()
                })
                .collect()
        };
        // The original continues identically.
        let original_next: Vec<f64> = (0..3)
            .map(|_| {
                cg.step();
                cg.residual_norm()
            })
            .collect();
        for (a, b) in original_next.iter().zip(reference_next.iter()) {
            assert!((a - b).abs() <= 1e-12 * a.max(1.0));
        }
    }

    #[test]
    fn lossless_roundtrip_is_exact_and_smaller() {
        let sys = plain_system(12);
        let n = sys.dim();
        let mut jacobi = Jacobi::new(sys.clone(), Vector::zeros(n), StoppingCriteria::new(1e-10, 10_000));
        for _ in 0..50 {
            jacobi.step();
        }
        let strategy = CheckpointStrategy::lossless_default();
        let enc = strategy.encode(&jacobi).unwrap();
        assert!(enc.encoded_bytes() > 0);

        let mut restored =
            Jacobi::new(sys, Vector::zeros(n), StoppingCriteria::new(1e-10, 10_000));
        strategy
            .recover(&mut restored, &enc.payloads, enc.iteration, &enc.scalars)
            .unwrap();
        assert_eq!(restored.iteration(), 50);
        assert!(restored.solution().max_abs_diff(jacobi.solution()) == 0.0);
    }

    #[test]
    fn lossy_encoding_only_saves_x_and_respects_bound() {
        let sys = spd_system(10);
        let n = sys.dim();
        let mut cg = ConjugateGradient::unpreconditioned(
            sys.clone(),
            Vector::zeros(n),
            StoppingCriteria::new(1e-10, 1000),
        );
        for _ in 0..20 {
            cg.step();
        }
        let strategy = CheckpointStrategy::lossy_default();
        let enc = strategy.encode(&cg).unwrap();
        assert_eq!(enc.payloads.len(), 1);
        assert_eq!(enc.original_bytes, n * 8);

        let x_before = cg.solution().clone();
        let mut restored = ConjugateGradient::unpreconditioned(
            sys,
            Vector::zeros(n),
            StoppingCriteria::new(1e-10, 1000),
        );
        strategy
            .recover(&mut restored, &enc.payloads, enc.iteration, &[])
            .unwrap();
        assert_eq!(restored.iteration(), 20);
        // Point-wise relative bound of 1e-4.
        for (a, b) in x_before.iter().zip(restored.solution().iter()) {
            assert!((a - b).abs() <= 1e-4 * a.abs() * (1.0 + 1e-9) + 1e-300);
        }
        // Restart recovery recorded in the history.
        assert_eq!(restored.history().restarts(), &[20]);
    }

    #[test]
    fn lossy_compresses_much_better_than_lossless_on_smooth_solution() {
        // Run Jacobi long enough that x approximates the smooth solution;
        // that is the regime where the paper's 20–60x ratios come from.
        let sys = plain_system(24);
        let n = sys.dim();
        let mut jacobi = Jacobi::new(sys, Vector::zeros(n), StoppingCriteria::new(1e-8, 50_000));
        jacobi.run_to_convergence();

        let lossy = CheckpointStrategy::lossy_default().encode(&jacobi).unwrap();
        let lossless = CheckpointStrategy::lossless_default()
            .encode(&jacobi)
            .unwrap();
        let trad = CheckpointStrategy::Traditional.encode(&jacobi).unwrap();
        assert!(
            lossy.encoded_bytes() * 2 < lossless.encoded_bytes(),
            "lossy {} vs lossless {}",
            lossy.encoded_bytes(),
            lossless.encoded_bytes()
        );
        assert!(
            lossy.encoded_bytes() * 4 < trad.encoded_bytes(),
            "lossy {} vs traditional {}",
            lossy.encoded_bytes(),
            trad.encoded_bytes()
        );
        assert!(lossless.encoded_bytes() <= trad.encoded_bytes());
    }

    #[test]
    fn adaptive_gmres_policy_tracks_residual() {
        let sys = plain_system(10);
        let n = sys.dim();
        let mut g = Gmres::unpreconditioned(
            sys,
            Vector::zeros(n),
            30,
            StoppingCriteria::new(1e-10, 10_000),
        );
        let policy = ErrorBoundPolicy::adaptive_gmres();
        let early = policy.resolve(&g);
        for _ in 0..40 {
            g.step();
        }
        let late = policy.resolve(&g);
        let (ErrorBound::PointwiseRel(e1), ErrorBound::PointwiseRel(e2)) = (early, late) else {
            panic!("adaptive policy must produce point-wise relative bounds");
        };
        assert!(e2 < e1, "bound should tighten as the residual drops");
    }

    #[test]
    fn zfp_backed_lossy_strategy_roundtrips() {
        let sys = spd_system(8);
        let n = sys.dim();
        let mut cg = ConjugateGradient::unpreconditioned(
            sys.clone(),
            Vector::zeros(n),
            StoppingCriteria::new(1e-10, 1000),
        );
        for _ in 0..10 {
            cg.step();
        }
        let strategy = CheckpointStrategy::Lossy {
            codec: LossyCodecKind::Zfp,
            policy: ErrorBoundPolicy::Fixed(ErrorBound::Abs(1e-6)),
        };
        let enc = strategy.encode(&cg).unwrap();
        let mut restored = ConjugateGradient::unpreconditioned(
            sys,
            Vector::zeros(n),
            StoppingCriteria::new(1e-10, 1000),
        );
        strategy
            .recover(&mut restored, &enc.payloads, enc.iteration, &[])
            .unwrap();
        for (a, b) in cg.solution().iter().zip(restored.solution().iter()) {
            assert!((a - b).abs() <= 1e-6 * (1.0 + 1e-9));
        }
    }

    #[test]
    fn none_strategy_encodes_nothing_and_cannot_recover() {
        let sys = plain_system(6);
        let n = sys.dim();
        let mut jacobi = Jacobi::new(sys, Vector::zeros(n), StoppingCriteria::new(1e-8, 1000));
        jacobi.step();
        let enc = CheckpointStrategy::None.encode(&jacobi).unwrap();
        assert!(enc.payloads.is_empty());
        assert_eq!(enc.encoded_bytes(), 0);
        assert!(CheckpointStrategy::None
            .recover(&mut jacobi, &enc.payloads, 0, &[])
            .is_err());
    }

    #[test]
    fn malformed_payloads_rejected() {
        let sys = plain_system(6);
        let n = sys.dim();
        let mut jacobi = Jacobi::new(sys, Vector::zeros(n), StoppingCriteria::new(1e-8, 1000));
        // Missing x.
        assert!(matches!(
            CheckpointStrategy::lossy_default().recover(&mut jacobi, &[], 0, &[]),
            Err(StrategyError::Malformed(_))
        ));
        // Truncated framed payload.
        let bad = vec![("x".to_string(), vec![1u8, 2, 3])];
        assert!(CheckpointStrategy::lossy_default()
            .recover(&mut jacobi, &bad, 0, &[])
            .is_err());
        // Raw payload with a bad length.
        let bad_raw = vec![("x".to_string(), vec![0u8; 13])];
        assert!(CheckpointStrategy::Traditional
            .recover(&mut jacobi, &bad_raw, 0, &[])
            .is_err());
    }

    #[test]
    fn strategy_error_display() {
        assert!(StrategyError::Compression("x".into()).to_string().contains('x'));
        assert!(StrategyError::Malformed("y".into()).to_string().contains('y'));
    }
}
