//! The sharded executor: runs the domain-decomposed solver loops of
//! `lcr-solvers` on real concurrent shard threads, with per-shard lossy
//! checkpointing and per-shard crash recovery.
//!
//! This is the promotion of the paper's *simulated* cluster into a real
//! one: [`run_sharded`] carves the global system into
//! [`ShardedCsr`](lcr_sparse::ShardedCsr) views via
//! [`partition_csr`](lcr_sparse::shard::partition_csr), spawns one scoped
//! thread per shard, and services the reduction/barrier coordinator on the
//! calling thread.  Each shard owns its solver state, its halo endpoints
//! and — when checkpointing is enabled — its *own*
//! [`DiskStore`](lcr_ckpt::DiskStore) under `ckpt_dir/shard-{k}/`, into
//! which it writes an SZ-compressed segment of its local solution slice.
//!
//! # Coordinated epoch commit
//!
//! A checkpoint *epoch* is the simultaneous checkpoint every shard takes at
//! the same iteration (the hooks run in lockstep).  After writing its
//! segment, each shard votes in an all-ok barrier
//! ([`ShardComm::barrier_all_ok`](lcr_sparse::ShardComm::barrier_all_ok));
//! the epoch is **committed** — recoverable — only if every shard's
//! segment landed and CRC-validated.  A failed shard therefore never
//! restores an epoch some peer failed to complete, even if its *own*
//! segment of a later epoch exists on disk.
//!
//! # Per-shard crash recovery
//!
//! Failure injection is a deterministic [`KillSpec`] every shard knows: at
//! the configured iteration the designated shard fail-stops (its local
//! solution is wiped), reloads its slice from the newest *committed* epoch
//! in its own store ([`DiskStore::read_valid_by_id`]) and SZ-decompresses
//! it; surviving shards keep their in-memory state untouched and merely
//! replay halo values.  All shards then return
//! [`HookEvent::RestartKrylov`], rebuilding the Krylov recurrence from the
//! partially restored global solution — Algorithm 2 of the paper executed
//! shard-locally, with rollback confined to the failed shard.

use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lcr_ckpt::{CheckpointBuffer, CheckpointLevel, DiskStore, RetryPolicy, StorageBackend};
use lcr_compress::{Compressed, ErrorBound, LossyCompressor, SzCompressor};
use lcr_solvers::sharded::{
    try_run_sharded as try_run_shard_loop, HookEvent, ShardHook, ShardedMethod,
};
use lcr_sparse::shard::{build_comms, gather_solution, partition_csr, CommError, CommInterposer};
use lcr_sparse::{CsrMatrix, ShardComm, ShardLayout, Vector, REDUCE_BLOCK};

/// Deterministic fail-stop injection: at the end of iteration
/// `at_iteration`, shard `shard` crashes and recovers from its newest
/// committed epoch.  Every shard holds the same spec, so the lockstep
/// hooks agree on when the recovery round happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// The shard that fail-stops.
    pub shard: usize,
    /// The (1-based) iteration after which it dies.
    pub at_iteration: usize,
}

/// Builds the [`StorageBackend`] a given shard's checkpoint store writes
/// through — the chaos-injection seam: production runs leave it unset
/// (plain OS-backed I/O), fault campaigns hand each shard a seeded
/// fault-injecting wrapper.
pub type ShardBackendFactory = Arc<dyn Fn(usize) -> Arc<dyn StorageBackend> + Send + Sync>;

/// Builds the [`CommInterposer`] installed on a given shard's comm
/// endpoint (message delay/drop/stall injection); `None` means faultless
/// delivery.
pub type ShardInterposerFactory = Arc<dyn Fn(usize) -> Box<dyn CommInterposer> + Send + Sync>;

/// Typed failure of a sharded run: the safety-invariant contract is that a
/// run either converges with a correct residual or surfaces one of these —
/// never a silent wrong answer.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardedError {
    /// A shard could not open or operate its durable checkpoint store.
    Storage {
        /// The shard whose store failed.
        shard: usize,
        /// What failed.
        message: String,
    },
    /// Shard communication failed (stall, abort, peer death, dropped
    /// message) — carries the typed comm error from `lcr-sparse`.
    Comm(CommError),
}

impl std::fmt::Display for ShardedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardedError::Storage { shard, message } => {
                write!(f, "shard {shard} storage failure: {message}")
            }
            ShardedError::Comm(e) => write!(f, "shard comm failure: {e}"),
        }
    }
}

impl std::error::Error for ShardedError {}

/// Configuration of one sharded run.
#[derive(Clone)]
pub struct ShardedRunConfig {
    /// Number of shards (concurrent worker threads).
    pub shards: usize,
    /// Which sharded solver loop to run.
    pub method: ShardedMethod,
    /// Relative convergence tolerance (`‖r‖ ≤ rtol · ‖b‖`).
    pub rtol: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Reduction-block size in rows; defaults to [`REDUCE_BLOCK`].  Traces
    /// are bit-identical across shard counts only for a fixed block size.
    pub reduce_block: usize,
    /// Checkpoint every this many iterations; `0` disables checkpointing.
    pub checkpoint_interval: usize,
    /// SZ error bound for the per-shard solution segments.
    pub error_bound: ErrorBound,
    /// Root directory for per-shard stores (`<dir>/shard-{k}/`).  Required
    /// when `checkpoint_interval > 0`.
    pub ckpt_dir: Option<PathBuf>,
    /// Checkpoints retained per shard store.
    pub retain: usize,
    /// Deterministic fail-stop injections.  Two entries with the same
    /// `at_iteration` and different shards model a *double fault*: both
    /// shards roll back in the same recovery round.
    pub kills: Vec<KillSpec>,
    /// Supervision heartbeat: when set, the coordinator flags a shard that
    /// stays silent this long as stalled ([`CommError::Stalled`]) and
    /// aborts the run with typed errors everywhere, and halo receives time
    /// out with [`CommError::PeerTimeout`] instead of blocking forever.
    pub heartbeat_timeout: Option<Duration>,
    /// Retry policy installed on each shard's checkpoint store (bounded
    /// exponential backoff for transient I/O faults).  `None` keeps the
    /// store default.
    pub retry: Option<RetryPolicy>,
    /// Per-shard storage-backend factory (chaos seam); `None` = plain OS
    /// file I/O.
    pub backend_factory: Option<ShardBackendFactory>,
    /// Per-shard comm-interposer factory (chaos seam); `None` = faultless
    /// message delivery.
    pub interposer_factory: Option<ShardInterposerFactory>,
}

impl std::fmt::Debug for ShardedRunConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRunConfig")
            .field("shards", &self.shards)
            .field("method", &self.method)
            .field("rtol", &self.rtol)
            .field("max_iterations", &self.max_iterations)
            .field("reduce_block", &self.reduce_block)
            .field("checkpoint_interval", &self.checkpoint_interval)
            .field("error_bound", &self.error_bound)
            .field("ckpt_dir", &self.ckpt_dir)
            .field("retain", &self.retain)
            .field("kills", &self.kills)
            .field("heartbeat_timeout", &self.heartbeat_timeout)
            .field("retry", &self.retry)
            .field("backend_factory", &self.backend_factory.is_some())
            .field("interposer_factory", &self.interposer_factory.is_some())
            .finish()
    }
}

impl ShardedRunConfig {
    /// A checkpoint-free, failure-free configuration with paper-style
    /// defaults (`reduce_block = `[`REDUCE_BLOCK`], SZ value-range bound
    /// `1e-4`, 4 retained checkpoints).
    pub fn new(shards: usize, method: ShardedMethod) -> Self {
        ShardedRunConfig {
            shards,
            method,
            rtol: 1e-7,
            max_iterations: 10_000,
            reduce_block: REDUCE_BLOCK,
            checkpoint_interval: 0,
            error_bound: ErrorBound::ValueRangeRel(1e-4),
            ckpt_dir: None,
            retain: 4,
            kills: Vec::new(),
            heartbeat_timeout: None,
            retry: None,
            backend_factory: None,
            interposer_factory: None,
        }
    }
}

/// Per-shard counters of a finished run — the recovery-isolation evidence:
/// a kill-one-shard run must show `rollbacks == 1` on the failed shard and
/// `rollbacks == 0` (with `halo_replays == 1`) on every survivor.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard rank.
    pub shard: usize,
    /// Locally owned rows.
    pub rows: usize,
    /// Times this shard lost its state and rolled back to a checkpoint
    /// (or to zero when no epoch was committed yet).
    pub rollbacks: usize,
    /// Recovery rounds this shard survived: it kept its in-memory state
    /// and only replayed halo values for a failed peer.
    pub halo_replays: usize,
    /// Checkpoint segments this shard durably wrote.
    pub checkpoints_written: usize,
    /// Epochs this shard saw fail their commit barrier.
    pub aborted_epochs: usize,
    /// Iteration of the epoch this shard last restored from, if any.
    pub resumed_from_iteration: Option<usize>,
    /// Total `f64` values this shard sent in halo messages.
    pub halo_doubles_sent: u64,
    /// Reduction rounds this shard participated in.
    pub reduce_rounds: u64,
    /// Transient storage-I/O retries this shard's store performed.
    pub io_retries: u64,
    /// Checkpoint segments that landed only after at least one retry.
    pub retried_checkpoints: u64,
    /// Backoff delays (seconds) the store slept before each retry, in
    /// order — the retry schedule, logged rather than silent.
    pub io_backoff_seconds: Vec<f64>,
}

/// One committed checkpoint epoch, merged across shards.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Epoch sequence number (0-based).
    pub epoch: u64,
    /// Iteration the epoch was taken at.
    pub iteration: usize,
    /// Stored segment bytes per shard (0 for empty shards).  These are the
    /// *measured* per-shard checkpoint sizes Table 3's estimate column is
    /// compared against.
    pub shard_bytes: Vec<usize>,
}

impl EpochRecord {
    /// Total bytes of the epoch across all shards.
    pub fn total_bytes(&self) -> usize {
        self.shard_bytes.iter().sum()
    }
}

/// The merged result of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Whether the global residual met `rtol · ‖b‖`.
    pub converged: bool,
    /// Global iteration count.
    pub iterations: usize,
    /// Residual-norm trace (`trace[0]` = initial residual) — verified
    /// bit-identical across every shard before being returned.
    pub residual_trace: Vec<f64>,
    /// The gathered global solution.
    pub solution: Vector,
    /// Iterations at which the Krylov state was rebuilt.
    pub restart_iterations: Vec<usize>,
    /// Per-shard execution statistics, in shard order.
    pub shards: Vec<ShardStats>,
    /// Committed checkpoint epochs, in commit order.
    pub committed_epochs: Vec<EpochRecord>,
    /// Real wall-clock seconds of the scoped execution (spawn → join).
    pub wall_seconds: f64,
}

impl ShardedReport {
    /// Measured bytes of the newest committed epoch's segment for `shard`,
    /// if any epoch committed.
    pub fn last_epoch_shard_bytes(&self, shard: usize) -> Option<usize> {
        self.committed_epochs.last().map(|e| e.shard_bytes[shard])
    }
}

/// A committed epoch as one shard observed it.
#[derive(Debug, Clone)]
struct LocalEpoch {
    epoch: u64,
    /// Checkpoint id in this shard's store; `None` for empty shards.
    ckpt_id: Option<u64>,
    iteration: usize,
    bytes: usize,
}

/// The checkpoint/failure hook each shard thread plugs into its solver
/// loop: SZ-compress the local slice each epoch, vote the commit barrier,
/// and execute the configured kill/recovery.
struct CkptHook {
    shard: usize,
    interval: usize,
    bound: ErrorBound,
    sz: SzCompressor,
    store: Option<DiskStore>,
    buffer: CheckpointBuffer,
    kills: Vec<KillSpec>,
    kills_fired: Vec<bool>,
    next_epoch: u64,
    epochs: Vec<LocalEpoch>,
    rollbacks: usize,
    halo_replays: usize,
    checkpoints_written: usize,
    aborted_epochs: usize,
    resumed_from_iteration: Option<usize>,
}

impl CkptHook {
    fn new(shard: usize, cfg: &ShardedRunConfig) -> Result<Self, String> {
        let store = if cfg.checkpoint_interval > 0 {
            let root = cfg
                .ckpt_dir
                .as_ref()
                .expect("checkpoint_interval > 0 requires ckpt_dir");
            let dir = root.join(format!("shard-{shard}"));
            let mut store = match &cfg.backend_factory {
                Some(factory) => DiskStore::open_with_backend(dir, cfg.retain, factory(shard)),
                None => DiskStore::open(dir, cfg.retain),
            }
            .map_err(|e| format!("opening per-shard checkpoint store: {e}"))?;
            if let Some(retry) = cfg.retry {
                store.set_retry_policy(retry);
            }
            Some(store)
        } else {
            None
        };
        Ok(CkptHook {
            shard,
            interval: cfg.checkpoint_interval,
            bound: cfg.error_bound,
            sz: SzCompressor::new(),
            store,
            buffer: CheckpointBuffer::new(),
            kills: cfg.kills.clone(),
            kills_fired: vec![false; cfg.kills.len()],
            next_epoch: 0,
            epochs: Vec::new(),
            rollbacks: 0,
            halo_replays: 0,
            checkpoints_written: 0,
            aborted_epochs: 0,
            resumed_from_iteration: None,
        })
    }

    /// Writes this shard's segment of epoch `epoch` and returns
    /// `(ok, ckpt_id, bytes)`.  Empty shards succeed trivially — they have
    /// no state to lose.
    fn write_segment(&mut self, epoch: u64, iteration: usize, x: &[f64]) -> (bool, Option<u64>, usize) {
        if x.is_empty() {
            return (true, None, 0);
        }
        let store = self.store.as_mut().expect("checkpointing requires a store");
        self.buffer.clear();
        let compressed = {
            let (sz, bound) = (&self.sz, self.bound);
            self.buffer
                .push_with("x", |out| sz.compress_into(x, bound, out))
        };
        if compressed.is_err() {
            return (false, None, 0);
        }
        match store.push_from_buffer(
            iteration,
            epoch as f64,
            CheckpointLevel::Pfs,
            std::mem::size_of_val(x),
            None,
            "sharded-lossy",
            &[
                ("epoch".to_string(), epoch as f64),
                ("iteration".to_string(), iteration as f64),
            ],
            &self.buffer,
        ) {
            Ok(meta) => (true, Some(meta.id), meta.total_bytes),
            Err(_) => (false, None, 0),
        }
    }

    /// Fail-stop this shard: wipe the local solution, then restore it from
    /// the newest committed epoch that still reads back valid, walking
    /// older epochs when a newer one fails its CRC or decompression — a
    /// fault injected *during* recovery degrades to an earlier epoch
    /// instead of producing a wrong answer.  Falls back to the zero
    /// initial guess when no epoch is readable.
    fn crash_and_restore(&mut self, x: &mut [f64]) {
        self.rollbacks += 1;
        x.fill(f64::NAN);
        let candidates: Vec<LocalEpoch> = self.epochs.iter().rev().cloned().collect();
        let mut restored = None;
        for epoch in candidates {
            let attempt = (|| {
                let id = epoch.ckpt_id?;
                let store = self.store.as_mut()?;
                let ckpt = store.read_valid_by_id(id).ok()?;
                let payload = ckpt
                    .payloads
                    .iter()
                    .find(|(name, _)| name == "x")
                    .map(|(_, bytes)| bytes.clone())?;
                let decoded = self
                    .sz
                    .decompress(&Compressed {
                        bytes: payload,
                        n_elements: x.len(),
                    })
                    .ok()?;
                (decoded.len() == x.len()).then(|| {
                    x.copy_from_slice(&decoded);
                    epoch.iteration
                })
            })();
            if attempt.is_some() {
                restored = attempt;
                break;
            }
        }
        match restored {
            Some(iteration) => self.resumed_from_iteration = Some(iteration),
            // No committed epoch (or none readable): restart from the
            // zero initial guess, as Algorithm 2 does with no checkpoint.
            None => x.fill(0.0),
        }
    }
}

impl ShardHook for CkptHook {
    fn after_iteration(
        &mut self,
        iteration: usize,
        x: &mut [f64],
        comm: &mut ShardComm,
    ) -> Result<HookEvent, CommError> {
        // Checkpoint first, then kill: an epoch taken at the kill
        // iteration commits *before* the crash, exactly the ordering the
        // recovery e2e asserts on.
        if self.interval > 0 && iteration.is_multiple_of(self.interval) {
            let epoch = self.next_epoch;
            self.next_epoch += 1;
            let (ok, ckpt_id, bytes) = self.write_segment(epoch, iteration, x);
            if comm.try_barrier_all_ok(ok)? {
                if ckpt_id.is_some() {
                    self.checkpoints_written += 1;
                }
                self.epochs.push(LocalEpoch {
                    epoch,
                    ckpt_id,
                    iteration,
                    bytes,
                });
            } else {
                self.aborted_epochs += 1;
            }
        }
        // A recovery round fires when any not-yet-fired kill names this
        // iteration; all kills sharing the iteration fire together (a
        // double fault rolls back every named shard in one round).
        let mut round = false;
        let mut this_shard_killed = false;
        for (k, kill) in self.kills.iter().enumerate() {
            if !self.kills_fired[k] && iteration == kill.at_iteration {
                self.kills_fired[k] = true;
                round = true;
                if kill.shard == self.shard {
                    this_shard_killed = true;
                }
            }
        }
        if round {
            if this_shard_killed {
                self.crash_and_restore(x);
            } else {
                self.halo_replays += 1;
            }
            return Ok(HookEvent::RestartKrylov);
        }
        Ok(HookEvent::None)
    }
}

/// Runs the sharded solver on `A x = b` per `cfg` and merges the per-shard
/// outcomes, asserting the determinism contract (every shard's residual
/// trace bit-identical) on the way out.
///
/// The caller must hand over an operator matching the method's
/// requirements (CG needs SPD — negate the paper's negative-definite
/// Poisson system first, as [`crate::workload`] does).
///
/// # Panics
/// Panics on dimension mismatch, on a configuration requiring a missing
/// `ckpt_dir`, if a shard thread panics, if shards disagree on the
/// residual trace or committed epochs (a determinism-contract violation),
/// or on any typed run failure — see [`try_run_sharded`] for the fallible
/// variant chaos campaigns use.
pub fn run_sharded(a: &CsrMatrix, b: &Vector, cfg: &ShardedRunConfig) -> ShardedReport {
    match try_run_sharded(a, b, cfg) {
        Ok(report) => report,
        Err(e) => panic!("sharded run failed: {e}"),
    }
}

/// Fallible variant of [`run_sharded`]: storage failures and comm
/// failures (stalls, aborts, injected drops) surface as a typed
/// [`ShardedError`] instead of a panic.  All shard threads are always
/// joined before returning — the coordinator aborts and drains survivors
/// when any shard dies early, so an error return never leaks a thread.
///
/// # Panics
/// Panics on dimension mismatch, a configuration requiring a missing
/// `ckpt_dir`, a kill naming a nonexistent shard, a shard thread panic,
/// or a determinism-contract violation between shards.
pub fn try_run_sharded(
    a: &CsrMatrix,
    b: &Vector,
    cfg: &ShardedRunConfig,
) -> Result<ShardedReport, ShardedError> {
    assert_eq!(a.nrows(), b.len(), "matrix/rhs dimension mismatch");
    assert!(
        cfg.checkpoint_interval == 0 || cfg.ckpt_dir.is_some(),
        "checkpoint_interval > 0 requires ckpt_dir"
    );
    for kill in &cfg.kills {
        assert!(kill.shard < cfg.shards, "kill names a nonexistent shard");
    }
    let layout = ShardLayout::with_block(a.nrows(), cfg.shards, cfg.reduce_block);
    let parts = partition_csr(a, &layout);
    let (comms, mut coord) = build_comms(cfg.shards);
    coord.set_timeout(cfg.heartbeat_timeout);
    let b_all = b.as_slice();

    let start = Instant::now();
    let (coord_result, results) = std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .iter()
            .zip(comms)
            .map(|(part, mut comm)| {
                let layout = &layout;
                scope.spawn(move || {
                    comm.set_timeout(cfg.heartbeat_timeout);
                    if let Some(factory) = &cfg.interposer_factory {
                        comm.set_interposer(factory(part.shard));
                    }
                    let (r0, r1) = layout.range(part.shard);
                    let mut hook = match CkptHook::new(part.shard, cfg) {
                        Ok(hook) => hook,
                        Err(message) => {
                            // Still announce completion so the coordinator
                            // can abort the round and drain cleanly.
                            comm.finish();
                            return Err(ShardedError::Storage {
                                shard: part.shard,
                                message,
                            });
                        }
                    };
                    let solved = try_run_shard_loop(
                        cfg.method,
                        part,
                        &b_all[r0..r1],
                        cfg.rtol,
                        cfg.max_iterations,
                        &mut comm,
                        &mut hook,
                    );
                    let (io_retries, retried_checkpoints, io_backoff_seconds) =
                        hook.store.as_ref().map_or((0, 0, Vec::new()), |s| {
                            (s.io_retries(), s.retried_pushes(), s.backoff_log().to_vec())
                        });
                    let stats = ShardStats {
                        shard: part.shard,
                        rows: r1 - r0,
                        rollbacks: hook.rollbacks,
                        halo_replays: hook.halo_replays,
                        checkpoints_written: hook.checkpoints_written,
                        aborted_epochs: hook.aborted_epochs,
                        resumed_from_iteration: hook.resumed_from_iteration,
                        halo_doubles_sent: comm.halo_doubles_sent(),
                        reduce_rounds: comm.reduce_rounds(),
                        io_retries,
                        retried_checkpoints,
                        io_backoff_seconds,
                    };
                    comm.finish();
                    match solved {
                        Ok(outcome) => Ok((outcome, stats, hook.epochs)),
                        Err(e) => Err(ShardedError::Comm(e)),
                    }
                })
            })
            .collect();
        let coord_result = coord.try_serve();
        let results: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect();
        (coord_result, results)
    });
    let wall_seconds = start.elapsed().as_secs_f64();

    // Error aggregation: a storage failure is the root cause (comm aborts
    // are its fallout), then a coordinator-detected stall/abort, then the
    // first shard comm error.
    let mut comm_err = None;
    for result in &results {
        match result {
            Err(e @ ShardedError::Storage { .. }) => return Err(e.clone()),
            Err(e @ ShardedError::Comm(_)) if comm_err.is_none() => comm_err = Some(e.clone()),
            _ => {}
        }
    }
    if let Err(e) = coord_result {
        return Err(ShardedError::Comm(e));
    }
    if let Some(e) = comm_err {
        return Err(e);
    }
    let results: Vec<_> = results
        .into_iter()
        .map(|r| r.expect("checked above"))
        .collect();

    // Determinism contract: every shard observed the same global run.
    let (first, _, _) = &results[0];
    for (outcome, stats, _) in &results[1..] {
        assert_eq!(outcome.iterations, first.iterations, "iteration divergence");
        assert_eq!(outcome.converged, first.converged, "convergence divergence");
        assert_eq!(
            outcome.trace.len(),
            first.trace.len(),
            "trace length divergence"
        );
        for (k, (a, b)) in outcome.trace.iter().zip(&first.trace).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "residual trace diverged at entry {k} on shard {}",
                stats.shard
            );
        }
    }

    // Merge committed epochs: every shard must have committed the same
    // sequence; assemble the measured per-shard segment sizes.
    let epoch_seq: Vec<(u64, usize)> = results[0]
        .2
        .iter()
        .map(|e| (e.epoch, e.iteration))
        .collect();
    for (_, stats, epochs) in &results {
        let seq: Vec<(u64, usize)> = epochs.iter().map(|e| (e.epoch, e.iteration)).collect();
        assert_eq!(
            seq, epoch_seq,
            "shard {} committed a different epoch sequence",
            stats.shard
        );
    }
    let committed_epochs: Vec<EpochRecord> = epoch_seq
        .iter()
        .enumerate()
        .map(|(k, &(epoch, iteration))| EpochRecord {
            epoch,
            iteration,
            shard_bytes: results.iter().map(|(_, _, e)| e[k].bytes).collect(),
        })
        .collect();

    let locals: Vec<Vec<f64>> = results
        .iter()
        .map(|(outcome, _, _)| outcome.x_local.clone())
        .collect();
    let solution = gather_solution(&layout, &locals);
    let (first, _, _) = &results[0];
    Ok(ShardedReport {
        converged: first.converged,
        iterations: first.iterations,
        residual_trace: first.trace.clone(),
        solution,
        restart_iterations: first.restart_iterations.clone(),
        shards: results.iter().map(|(_, s, _)| s.clone()).collect(),
        committed_epochs,
        wall_seconds,
    })
}

/// Upper bound on useful shard counts for this host — callers sizing a
/// shard matrix can clamp against it (purely advisory; any count works).
pub fn max_useful_shards() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcr_sparse::poisson::poisson3d;

    /// The paper's Poisson operator is negative definite; CG needs SPD.
    fn spd_poisson(edge: usize) -> (CsrMatrix, Vector) {
        let mut a = poisson3d(edge);
        for v in a.values_mut() {
            *v = -*v;
        }
        let b = Vector::filled(a.nrows(), 1.0);
        (a, b)
    }

    #[test]
    fn sharded_cg_converges_and_matches_across_shard_counts() {
        let (a, b) = spd_poisson(8);
        let mut cfg = ShardedRunConfig::new(1, ShardedMethod::Cg);
        cfg.rtol = 1e-8;
        cfg.reduce_block = 64;
        let base = run_sharded(&a, &b, &cfg);
        assert!(base.converged);
        for shards in [2, 4] {
            let mut cfg_s = cfg.clone();
            cfg_s.shards = shards;
            let rep = run_sharded(&a, &b, &cfg_s);
            assert_eq!(rep.iterations, base.iterations);
            assert_eq!(rep.residual_trace.len(), base.residual_trace.len());
            for (x, y) in rep.residual_trace.iter().zip(&base.residual_trace) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in rep.solution.as_slice().iter().zip(base.solution.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn epochs_commit_and_record_measured_bytes() {
        let (a, b) = spd_poisson(8);
        let dir = std::env::temp_dir().join(format!("lcr-shard-epochs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ShardedRunConfig::new(2, ShardedMethod::Cg);
        cfg.rtol = 1e-8;
        cfg.reduce_block = 64;
        cfg.checkpoint_interval = 5;
        cfg.ckpt_dir = Some(dir.clone());
        let rep = run_sharded(&a, &b, &cfg);
        assert!(rep.converged);
        assert!(!rep.committed_epochs.is_empty());
        for e in &rep.committed_epochs {
            assert_eq!(e.shard_bytes.len(), 2);
            assert!(e.total_bytes() > 0);
        }
        // Each shard store holds real files.
        for s in 0..2 {
            let shard_dir = dir.join(format!("shard-{s}"));
            assert!(shard_dir.is_dir());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_one_shard_rolls_back_only_that_shard() {
        let (a, b) = spd_poisson(8);
        let dir = std::env::temp_dir().join(format!("lcr-shard-kill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ShardedRunConfig::new(4, ShardedMethod::Cg);
        cfg.rtol = 1e-8;
        cfg.reduce_block = 32;
        cfg.checkpoint_interval = 4;
        cfg.ckpt_dir = Some(dir.clone());
        cfg.kills = vec![KillSpec {
            shard: 1,
            at_iteration: 10,
        }];
        let rep = run_sharded(&a, &b, &cfg);
        assert!(rep.converged, "run must converge after recovery");
        assert!(rep.restart_iterations.contains(&10));
        for stats in &rep.shards {
            if stats.shard == 1 {
                assert_eq!(stats.rollbacks, 1, "failed shard rolls back once");
                assert_eq!(stats.resumed_from_iteration, Some(8));
            } else {
                assert_eq!(stats.rollbacks, 0, "survivors must not roll back");
                assert_eq!(stats.halo_replays, 1);
                assert_eq!(stats.resumed_from_iteration, None);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_before_any_epoch_restarts_from_zero() {
        let (a, b) = spd_poisson(6);
        let mut cfg = ShardedRunConfig::new(2, ShardedMethod::Cg);
        cfg.rtol = 1e-8;
        cfg.reduce_block = 32;
        cfg.kills = vec![KillSpec {
            shard: 0,
            at_iteration: 3,
        }];
        let rep = run_sharded(&a, &b, &cfg);
        assert!(rep.converged);
        assert_eq!(rep.shards[0].rollbacks, 1);
        assert_eq!(rep.shards[0].resumed_from_iteration, None);
        assert_eq!(rep.shards[1].halo_replays, 1);
    }

    #[test]
    fn jacobi_and_bicgstab_run_sharded() {
        let a = poisson3d(6);
        let b = Vector::filled(a.nrows(), 1.0);
        for method in [ShardedMethod::Jacobi, ShardedMethod::BiCgStab] {
            let mut cfg = ShardedRunConfig::new(3, method);
            cfg.rtol = 1e-6;
            cfg.reduce_block = 32;
            cfg.max_iterations = 5000;
            let rep = run_sharded(&a, &b, &cfg);
            assert!(rep.converged, "{} must converge", method.name());
        }
    }
}
