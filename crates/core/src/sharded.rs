//! The sharded executor: runs the domain-decomposed solver loops of
//! `lcr-solvers` on real concurrent shard threads, with per-shard lossy
//! checkpointing and per-shard crash recovery.
//!
//! This is the promotion of the paper's *simulated* cluster into a real
//! one: [`run_sharded`] carves the global system into
//! [`ShardedCsr`](lcr_sparse::ShardedCsr) views via
//! [`partition_csr`](lcr_sparse::shard::partition_csr), spawns one scoped
//! thread per shard, and services the reduction/barrier coordinator on the
//! calling thread.  Each shard owns its solver state, its halo endpoints
//! and — when checkpointing is enabled — its *own*
//! [`DiskStore`](lcr_ckpt::DiskStore) under `ckpt_dir/shard-{k}/`, into
//! which it writes an SZ-compressed segment of its local solution slice.
//!
//! # Coordinated epoch commit
//!
//! A checkpoint *epoch* is the simultaneous checkpoint every shard takes at
//! the same iteration (the hooks run in lockstep).  After writing its
//! segment, each shard votes in an all-ok barrier
//! ([`ShardComm::barrier_all_ok`](lcr_sparse::ShardComm::barrier_all_ok));
//! the epoch is **committed** — recoverable — only if every shard's
//! segment landed and CRC-validated.  A failed shard therefore never
//! restores an epoch some peer failed to complete, even if its *own*
//! segment of a later epoch exists on disk.
//!
//! # Per-shard crash recovery
//!
//! Failure injection is a deterministic [`KillSpec`] every shard knows: at
//! the configured iteration the designated shard fail-stops (its local
//! solution is wiped), reloads its slice from the newest *committed* epoch
//! in its own store ([`DiskStore::read_valid_by_id`]) and SZ-decompresses
//! it; surviving shards keep their in-memory state untouched and merely
//! replay halo values.  All shards then return
//! [`HookEvent::RestartKrylov`], rebuilding the Krylov recurrence from the
//! partially restored global solution — Algorithm 2 of the paper executed
//! shard-locally, with rollback confined to the failed shard.

use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::Instant;

use lcr_ckpt::{CheckpointBuffer, CheckpointLevel, DiskStore};
use lcr_compress::{Compressed, ErrorBound, LossyCompressor, SzCompressor};
use lcr_solvers::sharded::{run_sharded as run_shard_loop, HookEvent, ShardHook, ShardedMethod};
use lcr_sparse::shard::{build_comms, gather_solution, partition_csr};
use lcr_sparse::{CsrMatrix, ShardComm, ShardLayout, Vector, REDUCE_BLOCK};

/// Deterministic fail-stop injection: at the end of iteration
/// `at_iteration`, shard `shard` crashes and recovers from its newest
/// committed epoch.  Every shard holds the same spec, so the lockstep
/// hooks agree on when the recovery round happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// The shard that fail-stops.
    pub shard: usize,
    /// The (1-based) iteration after which it dies.
    pub at_iteration: usize,
}

/// Configuration of one sharded run.
#[derive(Debug, Clone)]
pub struct ShardedRunConfig {
    /// Number of shards (concurrent worker threads).
    pub shards: usize,
    /// Which sharded solver loop to run.
    pub method: ShardedMethod,
    /// Relative convergence tolerance (`‖r‖ ≤ rtol · ‖b‖`).
    pub rtol: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Reduction-block size in rows; defaults to [`REDUCE_BLOCK`].  Traces
    /// are bit-identical across shard counts only for a fixed block size.
    pub reduce_block: usize,
    /// Checkpoint every this many iterations; `0` disables checkpointing.
    pub checkpoint_interval: usize,
    /// SZ error bound for the per-shard solution segments.
    pub error_bound: ErrorBound,
    /// Root directory for per-shard stores (`<dir>/shard-{k}/`).  Required
    /// when `checkpoint_interval > 0`.
    pub ckpt_dir: Option<PathBuf>,
    /// Checkpoints retained per shard store.
    pub retain: usize,
    /// Optional deterministic fail-stop injection.
    pub kill: Option<KillSpec>,
}

impl ShardedRunConfig {
    /// A checkpoint-free, failure-free configuration with paper-style
    /// defaults (`reduce_block = `[`REDUCE_BLOCK`], SZ value-range bound
    /// `1e-4`, 4 retained checkpoints).
    pub fn new(shards: usize, method: ShardedMethod) -> Self {
        ShardedRunConfig {
            shards,
            method,
            rtol: 1e-7,
            max_iterations: 10_000,
            reduce_block: REDUCE_BLOCK,
            checkpoint_interval: 0,
            error_bound: ErrorBound::ValueRangeRel(1e-4),
            ckpt_dir: None,
            retain: 4,
            kill: None,
        }
    }
}

/// Per-shard counters of a finished run — the recovery-isolation evidence:
/// a kill-one-shard run must show `rollbacks == 1` on the failed shard and
/// `rollbacks == 0` (with `halo_replays == 1`) on every survivor.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard rank.
    pub shard: usize,
    /// Locally owned rows.
    pub rows: usize,
    /// Times this shard lost its state and rolled back to a checkpoint
    /// (or to zero when no epoch was committed yet).
    pub rollbacks: usize,
    /// Recovery rounds this shard survived: it kept its in-memory state
    /// and only replayed halo values for a failed peer.
    pub halo_replays: usize,
    /// Checkpoint segments this shard durably wrote.
    pub checkpoints_written: usize,
    /// Epochs this shard saw fail their commit barrier.
    pub aborted_epochs: usize,
    /// Iteration of the epoch this shard last restored from, if any.
    pub resumed_from_iteration: Option<usize>,
    /// Total `f64` values this shard sent in halo messages.
    pub halo_doubles_sent: u64,
    /// Reduction rounds this shard participated in.
    pub reduce_rounds: u64,
}

/// One committed checkpoint epoch, merged across shards.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Epoch sequence number (0-based).
    pub epoch: u64,
    /// Iteration the epoch was taken at.
    pub iteration: usize,
    /// Stored segment bytes per shard (0 for empty shards).  These are the
    /// *measured* per-shard checkpoint sizes Table 3's estimate column is
    /// compared against.
    pub shard_bytes: Vec<usize>,
}

impl EpochRecord {
    /// Total bytes of the epoch across all shards.
    pub fn total_bytes(&self) -> usize {
        self.shard_bytes.iter().sum()
    }
}

/// The merged result of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Whether the global residual met `rtol · ‖b‖`.
    pub converged: bool,
    /// Global iteration count.
    pub iterations: usize,
    /// Residual-norm trace (`trace[0]` = initial residual) — verified
    /// bit-identical across every shard before being returned.
    pub residual_trace: Vec<f64>,
    /// The gathered global solution.
    pub solution: Vector,
    /// Iterations at which the Krylov state was rebuilt.
    pub restart_iterations: Vec<usize>,
    /// Per-shard execution statistics, in shard order.
    pub shards: Vec<ShardStats>,
    /// Committed checkpoint epochs, in commit order.
    pub committed_epochs: Vec<EpochRecord>,
    /// Real wall-clock seconds of the scoped execution (spawn → join).
    pub wall_seconds: f64,
}

impl ShardedReport {
    /// Measured bytes of the newest committed epoch's segment for `shard`,
    /// if any epoch committed.
    pub fn last_epoch_shard_bytes(&self, shard: usize) -> Option<usize> {
        self.committed_epochs.last().map(|e| e.shard_bytes[shard])
    }
}

/// A committed epoch as one shard observed it.
#[derive(Debug, Clone)]
struct LocalEpoch {
    epoch: u64,
    /// Checkpoint id in this shard's store; `None` for empty shards.
    ckpt_id: Option<u64>,
    iteration: usize,
    bytes: usize,
}

/// The checkpoint/failure hook each shard thread plugs into its solver
/// loop: SZ-compress the local slice each epoch, vote the commit barrier,
/// and execute the configured kill/recovery.
struct CkptHook {
    shard: usize,
    interval: usize,
    bound: ErrorBound,
    sz: SzCompressor,
    store: Option<DiskStore>,
    buffer: CheckpointBuffer,
    kill: Option<KillSpec>,
    killed: bool,
    next_epoch: u64,
    epochs: Vec<LocalEpoch>,
    rollbacks: usize,
    halo_replays: usize,
    checkpoints_written: usize,
    aborted_epochs: usize,
    resumed_from_iteration: Option<usize>,
}

impl CkptHook {
    fn new(shard: usize, cfg: &ShardedRunConfig) -> Self {
        let store = if cfg.checkpoint_interval > 0 {
            let root = cfg
                .ckpt_dir
                .as_ref()
                .expect("checkpoint_interval > 0 requires ckpt_dir");
            Some(
                DiskStore::open(root.join(format!("shard-{shard}")), cfg.retain)
                    .expect("opening per-shard checkpoint store"),
            )
        } else {
            None
        };
        CkptHook {
            shard,
            interval: cfg.checkpoint_interval,
            bound: cfg.error_bound,
            sz: SzCompressor::new(),
            store,
            buffer: CheckpointBuffer::new(),
            kill: cfg.kill,
            killed: false,
            next_epoch: 0,
            epochs: Vec::new(),
            rollbacks: 0,
            halo_replays: 0,
            checkpoints_written: 0,
            aborted_epochs: 0,
            resumed_from_iteration: None,
        }
    }

    /// Writes this shard's segment of epoch `epoch` and returns
    /// `(ok, ckpt_id, bytes)`.  Empty shards succeed trivially — they have
    /// no state to lose.
    fn write_segment(&mut self, epoch: u64, iteration: usize, x: &[f64]) -> (bool, Option<u64>, usize) {
        if x.is_empty() {
            return (true, None, 0);
        }
        let store = self.store.as_mut().expect("checkpointing requires a store");
        self.buffer.clear();
        let compressed = {
            let (sz, bound) = (&self.sz, self.bound);
            self.buffer
                .push_with("x", |out| sz.compress_into(x, bound, out))
        };
        if compressed.is_err() {
            return (false, None, 0);
        }
        match store.push_from_buffer(
            iteration,
            epoch as f64,
            CheckpointLevel::Pfs,
            std::mem::size_of_val(x),
            None,
            "sharded-lossy",
            &[
                ("epoch".to_string(), epoch as f64),
                ("iteration".to_string(), iteration as f64),
            ],
            &self.buffer,
        ) {
            Ok(meta) => (true, Some(meta.id), meta.total_bytes),
            Err(_) => (false, None, 0),
        }
    }

    /// Fail-stop this shard: wipe the local solution, then restore it from
    /// the newest committed epoch (or zero if none committed yet).
    fn crash_and_restore(&mut self, x: &mut [f64]) {
        self.rollbacks += 1;
        x.fill(f64::NAN);
        let restored = self.epochs.last().cloned().and_then(|last| {
            let id = last.ckpt_id?;
            let store = self.store.as_mut()?;
            let ckpt = store.read_valid_by_id(id).ok()?;
            let payload = ckpt
                .payloads
                .iter()
                .find(|(name, _)| name == "x")
                .map(|(_, bytes)| bytes.clone())?;
            let decoded = self
                .sz
                .decompress(&Compressed {
                    bytes: payload,
                    n_elements: x.len(),
                })
                .ok()?;
            (decoded.len() == x.len()).then(|| {
                x.copy_from_slice(&decoded);
                last.iteration
            })
        });
        match restored {
            Some(iteration) => self.resumed_from_iteration = Some(iteration),
            // No committed epoch (or an unreadable one): restart from the
            // zero initial guess, as Algorithm 2 does with no checkpoint.
            None => x.fill(0.0),
        }
    }
}

impl ShardHook for CkptHook {
    fn after_iteration(
        &mut self,
        iteration: usize,
        x: &mut [f64],
        comm: &mut ShardComm,
    ) -> HookEvent {
        // Checkpoint first, then kill: an epoch taken at the kill
        // iteration commits *before* the crash, exactly the ordering the
        // recovery e2e asserts on.
        if self.interval > 0 && iteration.is_multiple_of(self.interval) {
            let epoch = self.next_epoch;
            self.next_epoch += 1;
            let (ok, ckpt_id, bytes) = self.write_segment(epoch, iteration, x);
            if comm.barrier_all_ok(ok) {
                if ckpt_id.is_some() {
                    self.checkpoints_written += 1;
                }
                self.epochs.push(LocalEpoch {
                    epoch,
                    ckpt_id,
                    iteration,
                    bytes,
                });
            } else {
                self.aborted_epochs += 1;
            }
        }
        if let Some(kill) = self.kill {
            if !self.killed && iteration == kill.at_iteration {
                self.killed = true;
                if kill.shard == self.shard {
                    self.crash_and_restore(x);
                } else {
                    self.halo_replays += 1;
                }
                return HookEvent::RestartKrylov;
            }
        }
        HookEvent::None
    }
}

/// Runs the sharded solver on `A x = b` per `cfg` and merges the per-shard
/// outcomes, asserting the determinism contract (every shard's residual
/// trace bit-identical) on the way out.
///
/// The caller must hand over an operator matching the method's
/// requirements (CG needs SPD — negate the paper's negative-definite
/// Poisson system first, as [`crate::workload`] does).
///
/// # Panics
/// Panics on dimension mismatch, on a configuration requiring a missing
/// `ckpt_dir`, if a shard thread panics, or if shards disagree on the
/// residual trace or committed epochs (a determinism-contract violation).
pub fn run_sharded(a: &CsrMatrix, b: &Vector, cfg: &ShardedRunConfig) -> ShardedReport {
    assert_eq!(a.nrows(), b.len(), "matrix/rhs dimension mismatch");
    assert!(
        cfg.checkpoint_interval == 0 || cfg.ckpt_dir.is_some(),
        "checkpoint_interval > 0 requires ckpt_dir"
    );
    if let Some(kill) = cfg.kill {
        assert!(kill.shard < cfg.shards, "kill names a nonexistent shard");
    }
    let layout = ShardLayout::with_block(a.nrows(), cfg.shards, cfg.reduce_block);
    let parts = partition_csr(a, &layout);
    let (comms, mut coord) = build_comms(cfg.shards);
    let b_all = b.as_slice();

    let start = Instant::now();
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .iter()
            .zip(comms)
            .map(|(part, mut comm)| {
                let layout = &layout;
                scope.spawn(move || {
                    let (r0, r1) = layout.range(part.shard);
                    let mut hook = CkptHook::new(part.shard, cfg);
                    let outcome = run_shard_loop(
                        cfg.method,
                        part,
                        &b_all[r0..r1],
                        cfg.rtol,
                        cfg.max_iterations,
                        &mut comm,
                        &mut hook,
                    );
                    let stats = ShardStats {
                        shard: part.shard,
                        rows: r1 - r0,
                        rollbacks: hook.rollbacks,
                        halo_replays: hook.halo_replays,
                        checkpoints_written: hook.checkpoints_written,
                        aborted_epochs: hook.aborted_epochs,
                        resumed_from_iteration: hook.resumed_from_iteration,
                        halo_doubles_sent: comm.halo_doubles_sent(),
                        reduce_rounds: comm.reduce_rounds(),
                    };
                    comm.finish();
                    (outcome, stats, hook.epochs)
                })
            })
            .collect();
        coord.serve();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });
    let wall_seconds = start.elapsed().as_secs_f64();

    // Determinism contract: every shard observed the same global run.
    let (first, _, _) = &results[0];
    for (outcome, stats, _) in &results[1..] {
        assert_eq!(outcome.iterations, first.iterations, "iteration divergence");
        assert_eq!(outcome.converged, first.converged, "convergence divergence");
        assert_eq!(
            outcome.trace.len(),
            first.trace.len(),
            "trace length divergence"
        );
        for (k, (a, b)) in outcome.trace.iter().zip(&first.trace).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "residual trace diverged at entry {k} on shard {}",
                stats.shard
            );
        }
    }

    // Merge committed epochs: every shard must have committed the same
    // sequence; assemble the measured per-shard segment sizes.
    let epoch_seq: Vec<(u64, usize)> = results[0]
        .2
        .iter()
        .map(|e| (e.epoch, e.iteration))
        .collect();
    for (_, stats, epochs) in &results {
        let seq: Vec<(u64, usize)> = epochs.iter().map(|e| (e.epoch, e.iteration)).collect();
        assert_eq!(
            seq, epoch_seq,
            "shard {} committed a different epoch sequence",
            stats.shard
        );
    }
    let committed_epochs: Vec<EpochRecord> = epoch_seq
        .iter()
        .enumerate()
        .map(|(k, &(epoch, iteration))| EpochRecord {
            epoch,
            iteration,
            shard_bytes: results.iter().map(|(_, _, e)| e[k].bytes).collect(),
        })
        .collect();

    let locals: Vec<Vec<f64>> = results
        .iter()
        .map(|(outcome, _, _)| outcome.x_local.clone())
        .collect();
    let solution = gather_solution(&layout, &locals);
    let (first, _, _) = &results[0];
    ShardedReport {
        converged: first.converged,
        iterations: first.iterations,
        residual_trace: first.trace.clone(),
        solution,
        restart_iterations: first.restart_iterations.clone(),
        shards: results.iter().map(|(_, s, _)| s.clone()).collect(),
        committed_epochs,
        wall_seconds,
    }
}

/// Upper bound on useful shard counts for this host — callers sizing a
/// shard matrix can clamp against it (purely advisory; any count works).
pub fn max_useful_shards() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcr_sparse::poisson::poisson3d;

    /// The paper's Poisson operator is negative definite; CG needs SPD.
    fn spd_poisson(edge: usize) -> (CsrMatrix, Vector) {
        let mut a = poisson3d(edge);
        for v in a.values_mut() {
            *v = -*v;
        }
        let b = Vector::filled(a.nrows(), 1.0);
        (a, b)
    }

    #[test]
    fn sharded_cg_converges_and_matches_across_shard_counts() {
        let (a, b) = spd_poisson(8);
        let mut cfg = ShardedRunConfig::new(1, ShardedMethod::Cg);
        cfg.rtol = 1e-8;
        cfg.reduce_block = 64;
        let base = run_sharded(&a, &b, &cfg);
        assert!(base.converged);
        for shards in [2, 4] {
            let mut cfg_s = cfg.clone();
            cfg_s.shards = shards;
            let rep = run_sharded(&a, &b, &cfg_s);
            assert_eq!(rep.iterations, base.iterations);
            assert_eq!(rep.residual_trace.len(), base.residual_trace.len());
            for (x, y) in rep.residual_trace.iter().zip(&base.residual_trace) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in rep.solution.as_slice().iter().zip(base.solution.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn epochs_commit_and_record_measured_bytes() {
        let (a, b) = spd_poisson(8);
        let dir = std::env::temp_dir().join(format!("lcr-shard-epochs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ShardedRunConfig::new(2, ShardedMethod::Cg);
        cfg.rtol = 1e-8;
        cfg.reduce_block = 64;
        cfg.checkpoint_interval = 5;
        cfg.ckpt_dir = Some(dir.clone());
        let rep = run_sharded(&a, &b, &cfg);
        assert!(rep.converged);
        assert!(!rep.committed_epochs.is_empty());
        for e in &rep.committed_epochs {
            assert_eq!(e.shard_bytes.len(), 2);
            assert!(e.total_bytes() > 0);
        }
        // Each shard store holds real files.
        for s in 0..2 {
            let shard_dir = dir.join(format!("shard-{s}"));
            assert!(shard_dir.is_dir());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_one_shard_rolls_back_only_that_shard() {
        let (a, b) = spd_poisson(8);
        let dir = std::env::temp_dir().join(format!("lcr-shard-kill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ShardedRunConfig::new(4, ShardedMethod::Cg);
        cfg.rtol = 1e-8;
        cfg.reduce_block = 32;
        cfg.checkpoint_interval = 4;
        cfg.ckpt_dir = Some(dir.clone());
        cfg.kill = Some(KillSpec {
            shard: 1,
            at_iteration: 10,
        });
        let rep = run_sharded(&a, &b, &cfg);
        assert!(rep.converged, "run must converge after recovery");
        assert!(rep.restart_iterations.contains(&10));
        for stats in &rep.shards {
            if stats.shard == 1 {
                assert_eq!(stats.rollbacks, 1, "failed shard rolls back once");
                assert_eq!(stats.resumed_from_iteration, Some(8));
            } else {
                assert_eq!(stats.rollbacks, 0, "survivors must not roll back");
                assert_eq!(stats.halo_replays, 1);
                assert_eq!(stats.resumed_from_iteration, None);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_before_any_epoch_restarts_from_zero() {
        let (a, b) = spd_poisson(6);
        let mut cfg = ShardedRunConfig::new(2, ShardedMethod::Cg);
        cfg.rtol = 1e-8;
        cfg.reduce_block = 32;
        cfg.kill = Some(KillSpec {
            shard: 0,
            at_iteration: 3,
        });
        let rep = run_sharded(&a, &b, &cfg);
        assert!(rep.converged);
        assert_eq!(rep.shards[0].rollbacks, 1);
        assert_eq!(rep.shards[0].resumed_from_iteration, None);
        assert_eq!(rep.shards[1].halo_replays, 1);
    }

    #[test]
    fn jacobi_and_bicgstab_run_sharded() {
        let a = poisson3d(6);
        let b = Vector::filled(a.nrows(), 1.0);
        for method in [ShardedMethod::Jacobi, ShardedMethod::BiCgStab] {
            let mut cfg = ShardedRunConfig::new(3, method);
            cfg.rtol = 1e-6;
            cfg.reduce_block = 32;
            cfg.max_iterations = 5000;
            let rep = run_sharded(&a, &b, &cfg);
            assert!(rep.converged, "{} must converge", method.name());
        }
    }
}
