//! Fault-tolerant execution driver.
//!
//! [`FaultTolerantRunner`] executes an iterative solver under a checkpoint
//! strategy in the presence of injected fail-stop failures, on the
//! simulated clock:
//!
//! * every solver iteration advances the clock by the cluster's
//!   per-iteration cost and is *really* executed (so convergence effects of
//!   lossy recoveries are genuine, not modelled);
//! * every `checkpoint_interval_iterations` iterations the strategy encodes
//!   the dynamic state; the clock is charged with the compression time
//!   (from the cluster's throughput model) and the PFS write time for the
//!   *paper-scale* equivalent of the encoded bytes;
//! * failures strike according to the exponential injector at any point —
//!   during computation, checkpointing or recovery, as in §5.4; when one
//!   strikes, the run rolls back to the last checkpoint: the strategy
//!   decodes it (restore or restart), the clock is charged with the
//!   recovery read + decompression time, and the iterations since that
//!   checkpoint are re-executed by the solver loop itself (the rollback
//!   cost of the model);
//! * if a failure strikes before any checkpoint exists, the run restarts
//!   from the initial guess.
//!
//! The outcome is a [`RunReport`] with the timing breakdown the paper's
//! Figures 8–10 are built from.

use crate::encoding::TemporalEncodingSelector;
use crate::strategy::CheckpointStrategy;
use crate::workload::ScaledProblem;
use lcr_compress::DeltaMode;
use lcr_ckpt::{
    CheckpointBuffer, CheckpointLevel, CkptError, ClusterConfig, DiskStore, FailureInjector,
    FtiContext, PfsModel, RetryPolicy, SimClock, StorageBackend,
};
use lcr_solvers::IterativeMethod;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Where checkpoints live for recovery purposes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Persistence {
    /// Checkpoints live only in process memory (the simulated-substrate
    /// default): recovery within a run works, but nothing survives the
    /// process.
    #[default]
    InMemory,
    /// Mirror every committed checkpoint into a durable on-disk tier
    /// (`lcr_ckpt::DiskStore`): crash-consistent files (CRC-validated,
    /// temp-file + rename atomicity) that a *fresh* runner can reopen and
    /// resume from.  Recovery reads — and CRC-validates — the newest
    /// complete checkpoint from this directory.
    Disk {
        /// Directory holding the checkpoint files (created if missing).
        dir: PathBuf,
        /// Hand finished checkpoints to a background I/O thread so file
        /// I/O overlaps the next solver iterations (double-buffered; the
        /// thread is joined before any recovery).
        write_behind: bool,
    },
}

impl Persistence {
    /// Durable persistence in `dir` with synchronous writes.
    pub fn disk(dir: impl Into<PathBuf>) -> Self {
        Persistence::Disk {
            dir: dir.into(),
            write_behind: false,
        }
    }

    /// Durable persistence in `dir` with write-behind I/O.
    pub fn disk_write_behind(dir: impl Into<PathBuf>) -> Self {
        Persistence::Disk {
            dir: dir.into(),
            write_behind: true,
        }
    }
}

/// Which execution substrate the runner drives.
///
/// The historical default is the *simulated* cluster: one global solver
/// advancing a [`SimClock`], with checkpoint/recovery **time** modelled by
/// the [`PfsModel`].  [`ExecutionBackend::Sharded`] instead routes the run
/// through [`crate::sharded::run_sharded`]: the system is domain-decomposed
/// over real concurrent shard threads with channel-based halo exchange,
/// per-shard SZ checkpoint segments under a coordinated epoch commit, and
/// per-shard crash recovery.  Timing semantics differ accordingly: the
/// sharded backend reports *real* wall-clock seconds in
/// [`RunReport::total_seconds`] and leaves the simulated time breakdown
/// (checkpoint/recovery/rollback seconds) at zero.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum ExecutionBackend {
    /// The simulated cluster (SimClock + PfsModel) — the default.
    #[default]
    Simulated,
    /// The real in-process domain-decomposed executor.
    Sharded(ShardedOptions),
}

/// Options of the sharded execution backend (see [`crate::sharded`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedOptions {
    /// Number of shards (concurrent worker threads).
    pub shards: usize,
    /// Reduction-block size in rows ([`lcr_sparse::REDUCE_BLOCK`] default).
    pub reduce_block: usize,
    /// Relative convergence tolerance of the sharded loop.
    pub rtol: f64,
    /// Iteration cap of the sharded loop.
    pub max_iterations: usize,
    /// SZ error bound for the per-shard checkpoint segments.
    pub error_bound: lcr_compress::ErrorBound,
    /// Deterministic fail-stop injections (two at the same iteration on
    /// different shards = a double fault).
    pub kills: Vec<crate::sharded::KillSpec>,
    /// Supervision heartbeat for the shard coordinator and halo receives:
    /// a shard silent this long is flagged stalled and the run aborts with
    /// typed errors instead of hanging.
    pub heartbeat_timeout: Option<Duration>,
}

impl ShardedOptions {
    /// Paper-style defaults for `shards` shards.
    pub fn new(shards: usize) -> Self {
        ShardedOptions {
            shards,
            reduce_block: lcr_sparse::REDUCE_BLOCK,
            rtol: 1e-7,
            max_iterations: 10_000,
            error_bound: lcr_compress::ErrorBound::ValueRangeRel(1e-4),
            kills: Vec::new(),
            heartbeat_timeout: None,
        }
    }
}

/// Configuration of one fault-tolerant run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The checkpoint strategy to use.
    pub strategy: CheckpointStrategy,
    /// Checkpoint every this many solver iterations (0 disables periodic
    /// checkpointing, e.g. for the failure-free baseline).
    pub checkpoint_interval_iterations: usize,
    /// Force a self-contained *anchor* checkpoint every this many snapshots
    /// and allow the SZ-backed lossy strategy to temporal-delta-encode the
    /// checkpoints in between (`0` or `1` disables delta coding: every
    /// checkpoint is an anchor).  Deltas shrink the write at the cost of a
    /// recovery that replays the chain from the nearest anchor; only the
    /// lossy strategy uses this — the others always write self-contained
    /// checkpoints.
    pub anchor_interval_snapshots: usize,
    /// Simulated cluster.
    pub cluster: ClusterConfig,
    /// Parallel-file-system model.
    pub pfs: PfsModel,
    /// Storage level checkpoints are written to.
    pub level: CheckpointLevel,
    /// Mean time to interruption in seconds (`f64::INFINITY` or a huge
    /// value with `failure_seed = None` for failure-free runs).
    pub mtti_seconds: f64,
    /// Seed for the failure injector; `None` disables failure injection.
    pub failure_seed: Option<u64>,
    /// Safety cap on the number of failures processed (guards against
    /// pathological configurations that can never finish).
    pub max_failures: usize,
    /// Safety cap on executed iterations (including re-executed ones).
    pub max_executed_iterations: usize,
    /// Worker threads for the shared-memory kernels (BLAS-1, SpMV, the
    /// compressors) during this run; `0` inherits the process-wide setting
    /// (`LCR_NUM_THREADS`, defaulting to the available parallelism).
    /// Results are bit-identical at any value — the kernels use
    /// deterministic fixed-chunk scheduling — so this only trades time for
    /// cores.
    pub num_threads: usize,
    /// Checkpoint persistence tier.  With [`Persistence::Disk`], a fresh
    /// runner pointed at the same directory resumes from the newest
    /// complete checkpoint instead of starting from scratch.
    pub persistence: Persistence,
    /// Execution substrate: the simulated cluster (default) or the real
    /// sharded executor.  The sharded backend uses
    /// `checkpoint_interval_iterations` and [`Persistence::Disk`]'s
    /// directory for its per-shard epoch checkpoints; the simulation-only
    /// fields (`cluster`, `pfs`, `mtti_seconds`, …) are ignored there.
    pub backend: ExecutionBackend,
}

impl RunConfig {
    /// A failure-free baseline configuration (no checkpoints, no failures).
    pub fn baseline(cluster: ClusterConfig, pfs: PfsModel) -> Self {
        RunConfig {
            strategy: CheckpointStrategy::None,
            checkpoint_interval_iterations: 0,
            anchor_interval_snapshots: 0,
            cluster,
            pfs,
            level: CheckpointLevel::Pfs,
            mtti_seconds: f64::MAX,
            failure_seed: None,
            max_failures: 0,
            max_executed_iterations: 10_000_000,
            num_threads: 0,
            persistence: Persistence::InMemory,
            backend: ExecutionBackend::Simulated,
        }
    }
}

/// Outcome of one fault-tolerant run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Strategy name ("none", "traditional", "lossless", "lossy").
    pub strategy: String,
    /// Iterations the solver needed to converge (its final iteration
    /// counter — the paper's "number of convergence iterations").
    pub convergence_iterations: usize,
    /// Total iterations actually executed, including rollback re-execution.
    pub executed_iterations: usize,
    /// Number of checkpoints written *and committed*.
    pub checkpoints_taken: usize,
    /// Checkpoints discarded because a failure struck during the write
    /// window: FTI atomicity — an interrupted checkpoint never becomes
    /// visible, and recovery falls back to the previous one.
    pub aborted_checkpoints: usize,
    /// Checkpoint attempts dropped because encoding failed or the durable
    /// tier could not persist them (previously swallowed silently).
    pub failed_checkpoints: usize,
    /// Checkpoints that committed only after at least one transient-I/O
    /// retry (the supervised retry layer; never silent).
    pub retried_checkpoints: usize,
    /// Individual transient storage-I/O retries across the run.
    pub io_retries: usize,
    /// Backoff delays (seconds) slept before each retry, in order — the
    /// logged retry schedule.
    pub io_backoff_seconds: Vec<f64>,
    /// Whether the durable disk tier was dropped mid-run after persistent
    /// hard failures (graceful degradation to the in-memory tier: the run
    /// keeps converging, but nothing durable survives the process).
    pub degraded_tier: bool,
    /// Committed checkpoints that are self-contained anchors.
    pub anchor_checkpoints: usize,
    /// Committed checkpoints that are temporal deltas against their
    /// predecessor (only possible for the lossy strategy with
    /// `anchor_interval_snapshots > 1`).
    pub delta_checkpoints: usize,
    /// Iteration this run resumed from via the durable on-disk tier
    /// (`None` when the run started from scratch).
    pub resumed_from_iteration: Option<usize>,
    /// Number of failures injected.
    pub failures: usize,
    /// Number of recoveries performed (≤ failures; a failure before the
    /// first checkpoint restarts from scratch instead).
    pub recoveries: usize,
    /// Total simulated wall-clock seconds.
    pub total_seconds: f64,
    /// Simulated seconds of productive computation (convergence_iterations
    /// × iteration time).
    pub productive_seconds: f64,
    /// Simulated seconds spent writing checkpoints (including compression).
    pub checkpoint_seconds: f64,
    /// Simulated seconds spent in recovery I/O (including decompression).
    pub recovery_seconds: f64,
    /// Simulated seconds of re-executed (rolled-back) computation.
    pub rollback_seconds: f64,
    /// Fault-tolerance overhead: `total - productive` (the paper's metric).
    pub overhead_seconds: f64,
    /// Residual-norm history of the run (for Figure 9 traces).
    pub residual_history: Vec<f64>,
    /// Iterations at which recoveries/restarts occurred.
    pub restart_iterations: Vec<usize>,
    /// Whether the solver hit its iteration limit instead of converging.
    pub hit_iteration_limit: bool,
    /// Encoded bytes of every committed checkpoint in commit order (same
    /// scale as [`RunReport::mean_checkpoint_bytes`]) — the payload-size
    /// trace that makes anchor spikes and delta troughs visible.
    pub checkpoint_bytes_trace: Vec<usize>,
    /// Mean encoded checkpoint bytes (paper-scale) per checkpoint.
    pub mean_checkpoint_bytes: f64,
    /// Mean compression ratio across checkpoints (1.0 for traditional).
    pub mean_compression_ratio: f64,
}

impl RunReport {
    /// Fault-tolerance overhead as a fraction of productive time.
    pub fn overhead_ratio(&self) -> f64 {
        if self.productive_seconds <= 0.0 {
            return 0.0;
        }
        self.overhead_seconds / self.productive_seconds
    }
}

/// Variable `index`'s share of a `total` split over `n_variables`: integer
/// division with the remainder distributed over the first variables, so
/// the per-variable shares sum *exactly* to the total (Table-3-style
/// per-variable originals must add up to the checkpoint's original size).
fn original_share(total: usize, n_variables: usize, index: usize) -> usize {
    debug_assert!(index < n_variables);
    total / n_variables + usize::from(index < total % n_variables)
}

/// Restores the calling thread's active-thread cap when a run ends.
struct ThreadLimitGuard(usize);

impl Drop for ThreadLimitGuard {
    fn drop(&mut self) {
        rayon::set_max_active_threads(self.0);
    }
}

/// The fault-tolerant execution driver.
pub struct FaultTolerantRunner {
    config: RunConfig,
    /// Storage backend the durable tier writes through (chaos-injection
    /// seam); `None` = plain OS file I/O.
    storage_backend: Option<Arc<dyn StorageBackend>>,
    /// Retry policy for transient durable-tier I/O errors; `None` keeps
    /// the store default.
    retry: Option<RetryPolicy>,
    /// Consecutive hard durable-commit failures after which the runner
    /// drops the disk tier and keeps going in memory.
    degrade_after: usize,
}

impl FaultTolerantRunner {
    /// Creates a runner for the given configuration.
    pub fn new(config: RunConfig) -> Self {
        FaultTolerantRunner {
            config,
            storage_backend: None,
            retry: None,
            degrade_after: 3,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Routes all durable-tier file I/O through `backend` — the seam a
    /// chaos campaign uses to inject storage faults.  Only affects
    /// [`Persistence::Disk`] runs on the simulated backend.
    pub fn with_storage_backend(mut self, backend: Arc<dyn StorageBackend>) -> Self {
        self.storage_backend = Some(backend);
        self
    }

    /// Overrides the durable tier's transient-I/O retry policy (bounded
    /// exponential backoff; retries are counted in the [`RunReport`]).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Sets how many *consecutive* hard durable-commit failures the runner
    /// tolerates before degrading to the in-memory tier (default 3; the
    /// degradation is flagged in [`RunReport::degraded_tier`]).
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn with_degrade_after(mut self, n: usize) -> Self {
        assert!(n > 0, "degrade threshold must be at least 1");
        self.degrade_after = n;
        self
    }

    /// Executes the run on the real sharded backend and adapts the
    /// [`crate::sharded::ShardedReport`] into the runner's [`RunReport`].
    ///
    /// The solver instance selects the sharded method by name and, on
    /// return, is restarted from the converged solution so its state
    /// matches the run outcome.  Timing: `total_seconds` is *real*
    /// wall-clock time; the simulated breakdown stays zero.
    fn run_sharded_backend(
        &self,
        solver: &mut dyn IterativeMethod,
        problem: &ScaledProblem,
        opts: &ShardedOptions,
    ) -> RunReport {
        let cfg = &self.config;
        let method = match solver.name() {
            "cg" | "restarted-cg" => lcr_solvers::ShardedMethod::Cg,
            "bicgstab" => lcr_solvers::ShardedMethod::BiCgStab,
            "jacobi" => lcr_solvers::ShardedMethod::Jacobi,
            other => panic!("sharded backend does not support solver '{other}'"),
        };
        // The paper's Poisson operator is negative definite; CG needs SPD,
        // so mirror `workload::build_solver` and solve (−A) x = (−b).
        let mut a = (*problem.system.a).clone();
        let mut b = (*problem.system.b).clone();
        if method == lcr_solvers::ShardedMethod::Cg {
            for v in a.values_mut() {
                *v = -*v;
            }
            b.scale(-1.0);
        }
        let mut scfg = crate::sharded::ShardedRunConfig::new(opts.shards, method);
        scfg.rtol = opts.rtol;
        scfg.max_iterations = opts.max_iterations;
        scfg.reduce_block = opts.reduce_block;
        scfg.error_bound = opts.error_bound;
        scfg.checkpoint_interval = cfg.checkpoint_interval_iterations;
        scfg.kills = opts.kills.clone();
        scfg.heartbeat_timeout = opts.heartbeat_timeout;
        if let Persistence::Disk { dir, .. } = &cfg.persistence {
            scfg.ckpt_dir = Some(dir.clone());
        } else if scfg.checkpoint_interval > 0 {
            panic!("the sharded backend persists checkpoints on disk: use Persistence::Disk");
        }
        let report = crate::sharded::run_sharded(&a, &b, &scfg);

        let failures: usize = report.shards.iter().map(|s| s.rollbacks).sum();
        let resumed_from_iteration = report
            .shards
            .iter()
            .find_map(|s| s.resumed_from_iteration);
        let bytes_trace: Vec<usize> = report
            .committed_epochs
            .iter()
            .map(crate::sharded::EpochRecord::total_bytes)
            .collect();
        let mean_checkpoint_bytes = if bytes_trace.is_empty() {
            0.0
        } else {
            bytes_trace.iter().sum::<usize>() as f64 / bytes_trace.len() as f64
        };
        let original_bytes = (problem.system.dim() * std::mem::size_of::<f64>()) as f64;
        let mean_compression_ratio = if mean_checkpoint_bytes > 0.0 {
            original_bytes / mean_checkpoint_bytes
        } else {
            1.0
        };
        // Leave the solver in the run's final state.
        solver.restart_from_solution(report.solution.clone(), report.iterations);
        let io_retries: usize = report.shards.iter().map(|s| s.io_retries as usize).sum();
        let retried_checkpoints: usize = report
            .shards
            .iter()
            .map(|s| s.retried_checkpoints as usize)
            .sum();
        let io_backoff_seconds: Vec<f64> = report
            .shards
            .iter()
            .flat_map(|s| s.io_backoff_seconds.iter().copied())
            .collect();
        RunReport {
            strategy: cfg.strategy.name().to_string(),
            convergence_iterations: report.iterations,
            executed_iterations: report.iterations,
            checkpoints_taken: report.committed_epochs.len(),
            aborted_checkpoints: report
                .shards
                .first()
                .map_or(0, |s| s.aborted_epochs),
            failed_checkpoints: 0,
            retried_checkpoints,
            io_retries,
            io_backoff_seconds,
            degraded_tier: false,
            anchor_checkpoints: report.committed_epochs.len(),
            delta_checkpoints: 0,
            resumed_from_iteration,
            failures,
            recoveries: failures,
            total_seconds: report.wall_seconds,
            productive_seconds: report.wall_seconds,
            checkpoint_seconds: 0.0,
            recovery_seconds: 0.0,
            rollback_seconds: 0.0,
            overhead_seconds: 0.0,
            residual_history: report.residual_trace.clone(),
            restart_iterations: report.restart_iterations.clone(),
            hit_iteration_limit: !report.converged,
            checkpoint_bytes_trace: bytes_trace,
            mean_checkpoint_bytes,
            mean_compression_ratio,
        }
    }

    /// Executes `solver` to convergence under failures and checkpointing,
    /// using `problem` for paper-scale byte accounting.
    ///
    /// # Panics
    /// Panics if the configuration enables failures without a checkpoint
    /// strategy able to make progress (guarded by `max_failures` /
    /// `max_executed_iterations` instead of hanging).
    pub fn run(
        &self,
        solver: &mut dyn IterativeMethod,
        problem: &ScaledProblem,
    ) -> RunReport {
        if let ExecutionBackend::Sharded(opts) = &self.config.backend {
            return self.run_sharded_backend(solver, problem, &opts.clone());
        }
        let cfg = &self.config;
        // Pin the kernel thread count for the duration of the run if the
        // config asks for one; restored on every exit path by the guard.
        let _threads = (cfg.num_threads > 0).then(|| {
            let guard = ThreadLimitGuard(rayon::max_active_threads());
            rayon::set_max_active_threads(cfg.num_threads);
            guard
        });
        // The SpMV plan is built once at problem finalize; force it here as
        // well so a run on a hand-assembled system never pays for plan
        // construction — and the recovery path's fused residual rebuilds
        // (`restart_from_solution` → `kernels::residual_norm2`) always find
        // it ready.
        problem.system.a.plan();
        let mut clock = SimClock::new();
        let mut injector = match cfg.failure_seed {
            Some(seed) if cfg.mtti_seconds.is_finite() => {
                FailureInjector::new(cfg.mtti_seconds, seed)
            }
            _ => FailureInjector::never(),
        };
        let mut fti = FtiContext::new(cfg.cluster, cfg.pfs, cfg.level);
        let mut degraded_tier = false;
        if let Persistence::Disk { dir, write_behind } = &cfg.persistence {
            let opened = match &self.storage_backend {
                Some(backend) => DiskStore::open_with_backend(dir, 2, Arc::clone(backend)),
                None => DiskStore::open(dir, 2),
            };
            match opened {
                Ok(mut disk) => {
                    if let Some(retry) = self.retry {
                        disk.set_retry_policy(retry);
                    }
                    disk.set_write_behind(*write_behind)
                        .expect("enabling write-behind cannot fail");
                    fti.attach_disk_store(disk);
                }
                // With an injected (chaos) backend an unopenable store is a
                // survivable fault: degrade to the in-memory tier.  Without
                // one it is a real misconfiguration — fail loudly.
                Err(e) if self.storage_backend.is_some() => {
                    degraded_tier = true;
                    let _ = e;
                }
                Err(e) => {
                    panic!("cannot open checkpoint directory {}: {e}", dir.display())
                }
            }
        }
        // Store real payloads, bill I/O time at the paper's scale.
        let byte_scale = problem.byte_scale_factor();
        fti.set_byte_scale(byte_scale);
        // Static variables: the matrix and preconditioner are regenerated
        // from the problem definition during recovery (as in the paper's
        // PETSc set-up); the I/O cost charged is re-reading the right-hand
        // side, i.e. one paper-scale vector.
        let static_bytes = problem.paper_vector_bytes();

        let mut executed_iterations = 0usize;
        let mut checkpoint_seconds = 0.0f64;
        let mut recovery_seconds = 0.0f64;
        let mut rollback_seconds = 0.0f64;
        let mut failures = 0usize;
        let mut recoveries = 0usize;
        let mut checkpoint_bytes_sum = 0.0f64;
        let mut compression_ratio_sum = 0.0f64;
        let mut checkpoints_taken = 0usize;
        let mut aborted_checkpoints = 0usize;
        let mut failed_checkpoints = 0usize;
        // Supervision state for the durable tier: consecutive hard commit
        // failures trigger degradation; counters harvested from a detached
        // store are carried here so nothing is lost mid-run.
        let mut consecutive_disk_failures = 0usize;
        let mut detached_io_retries = 0u64;
        let mut detached_retried_checkpoints = 0u64;
        let mut detached_backoff: Vec<f64> = Vec::new();
        // Scalars stored alongside the last checkpoint (needed by the exact
        // recovery path when recovering from the in-memory tier, which does
        // not persist scalars).
        let mut last_checkpoint_scalars: Vec<(String, f64)> = Vec::new();
        // Reusable checkpoint-encoding arena: after the first checkpoint
        // the encode side writes into already-sized memory, and each
        // payload is copied exactly once (arena -> FTI store) with no
        // intermediate per-variable buffers.
        let mut ckpt_buffer = CheckpointBuffer::new();
        // Anchored temporal-delta selection for the SZ-backed lossy
        // strategy: carries the previous checkpoint's quantization codes
        // between snapshots and forces an anchor every
        // `anchor_interval_snapshots`.  Reset whenever the chain breaks
        // (recovery, aborted write, failed commit) so a delta is never
        // written against a checkpoint the store does not hold.
        let mut selector =
            TemporalEncodingSelector::new(cfg.anchor_interval_snapshots, DeltaMode::Order2);
        let mut anchor_checkpoints = 0usize;
        let mut delta_checkpoints = 0usize;
        let mut checkpoint_bytes_trace: Vec<usize> = Vec::new();

        let t_it = cfg.cluster.iteration_seconds;

        // --- crash-consistent restart --------------------------------------
        // A durable tier left behind by a previous (crashed) process holds
        // its newest complete checkpoint; reopen it, validate CRCs, and
        // resume the solver from there instead of starting from scratch.
        let mut resumed_from_iteration: Option<usize> = None;
        if fti.disk_store().is_some_and(|d| !d.is_empty()) {
            let rec_start = clock.now();
            if let Ok(recovered) = fti.recover(&mut clock, static_bytes) {
                let decomp = match cfg.strategy {
                    CheckpointStrategy::Traditional | CheckpointStrategy::None => 0.0,
                    _ => cfg
                        .cluster
                        .decompression_seconds(problem.paper_vector_bytes()),
                };
                clock.advance(decomp);
                if cfg.strategy.can_recover_from(&recovered.tag)
                    && cfg
                        .strategy
                        .recover_chain(
                            solver,
                            &recovered.chain,
                            recovered.iteration,
                            &recovered.scalars,
                        )
                        .is_ok()
                {
                    last_checkpoint_scalars = recovered.scalars;
                    resumed_from_iteration = Some(recovered.iteration);
                }
            }
            recovery_seconds += clock.now() - rec_start;
        }

        'outer: while !solver.converged() {
            if executed_iterations >= cfg.max_executed_iterations {
                break;
            }
            // --- one solver iteration -------------------------------------
            let start = clock.now();
            solver.step();
            executed_iterations += 1;
            clock.advance(t_it);
            if injector.fails_during(start, clock.now()) && failures < cfg.max_failures {
                failures += 1;
                let wasted = self.handle_failure(
                    solver,
                    problem,
                    &mut fti,
                    &mut clock,
                    static_bytes,
                    &mut recoveries,
                    &mut recovery_seconds,
                    &last_checkpoint_scalars,
                );
                rollback_seconds += wasted;
                // The solver rolled back: the last *encoded* snapshot no
                // longer matches the last *committed* checkpoint.
                selector.reset();
                continue 'outer;
            }

            // --- periodic checkpoint ---------------------------------------
            let interval = cfg.checkpoint_interval_iterations;
            if interval > 0
                && solver.iteration() > 0
                && solver.iteration().is_multiple_of(interval)
                && !solver.converged()
                && !matches!(cfg.strategy, CheckpointStrategy::None)
            {
                let (encoded, delta_order) = match cfg.strategy.encode_temporal_into(
                    solver,
                    &mut ckpt_buffer,
                    &mut selector,
                ) {
                    Ok(pair) => pair,
                    Err(_) => {
                        // An encode failure means this checkpoint is
                        // skipped — count it instead of dropping silently,
                        // and drop the (possibly half-updated) delta state.
                        failed_checkpoints += 1;
                        selector.reset();
                        continue;
                    }
                };
                // Compression time at paper scale.
                let paper_original = (encoded.original_bytes as f64 * byte_scale) as usize;
                let comp_secs = match cfg.strategy {
                    CheckpointStrategy::Traditional | CheckpointStrategy::None => 0.0,
                    _ => cfg.cluster.compression_seconds(paper_original),
                };
                let ckpt_start = clock.now();
                clock.advance(comp_secs);
                // Register each saved variable with its paper-scale
                // original size so the metadata reports Table-3-style
                // per-variable numbers; the integer-division remainder is
                // spread over the first variables so the per-variable
                // originals sum exactly to the total.
                let n_variables = ckpt_buffer.n_variables();
                for (i, (name, _)) in ckpt_buffer.segments().enumerate() {
                    fti.protect(name, original_share(paper_original, n_variables, i));
                }
                // FTI atomicity: advance the clock over the whole write
                // window *first*, and only commit the snapshot if no
                // failure struck inside it — an interrupted checkpoint
                // never becomes visible (not in memory, not on disk), so
                // recovery falls back to the previous complete one.
                let write_secs = fti.planned_write_seconds(ckpt_buffer.total_bytes());
                clock.advance(write_secs);
                let interrupted =
                    injector.fails_during(ckpt_start, clock.now()) && failures < cfg.max_failures;
                checkpoint_seconds += clock.now() - ckpt_start;
                if interrupted {
                    aborted_checkpoints += 1;
                    failures += 1;
                    let wasted = self.handle_failure(
                        solver,
                        problem,
                        &mut fti,
                        &mut clock,
                        static_bytes,
                        &mut recoveries,
                        &mut recovery_seconds,
                        &last_checkpoint_scalars,
                    );
                    rollback_seconds += wasted;
                    // The aborted checkpoint never became visible: a delta
                    // against it would be undecodable.
                    selector.reset();
                    continue 'outer;
                }
                match fti.commit_snapshot_from_buffer(
                    clock.now(),
                    encoded.iteration,
                    cfg.strategy.name(),
                    &encoded.scalars,
                    delta_order,
                    &mut ckpt_buffer,
                    write_secs,
                ) {
                    Ok(meta) => {
                        checkpoints_taken += 1;
                        checkpoint_bytes_sum += meta.total_bytes as f64;
                        compression_ratio_sum += meta.compression_ratio();
                        checkpoint_bytes_trace.push(meta.total_bytes);
                        if delta_order.is_some() {
                            delta_checkpoints += 1;
                        } else {
                            anchor_checkpoints += 1;
                        }
                        last_checkpoint_scalars = encoded.scalars;
                        consecutive_disk_failures = 0;
                    }
                    // Counts durable-write failures; under write-behind a
                    // deferred I/O error surfaces on the *next* commit (the
                    // failed file is already invalidated on disk), so the
                    // attribution may lag one checkpoint while the totals
                    // stay exact.  Hard I/O failures that persist past the
                    // retry layer for `degrade_after` consecutive commits
                    // mean the disk is gone, not glitching: drop the
                    // durable tier and keep converging in memory.
                    Err(e) => {
                        failed_checkpoints += 1;
                        selector.reset();
                        if matches!(e, CkptError::Io(_)) {
                            consecutive_disk_failures += 1;
                            if consecutive_disk_failures >= self.degrade_after {
                                if let Some(disk) = fti.detach_disk_store() {
                                    detached_io_retries = disk.io_retries();
                                    detached_retried_checkpoints = disk.retried_pushes();
                                    detached_backoff = disk.backoff_log().to_vec();
                                }
                                degraded_tier = true;
                            }
                        }
                    }
                }
            }
        }

        let convergence_iterations = solver.iteration();
        let productive_seconds = convergence_iterations as f64 * t_it;
        let rollback_compute =
            (executed_iterations.saturating_sub(convergence_iterations)) as f64 * t_it;
        let total_seconds = clock.now();
        // Retry observability: the live store's counters plus whatever a
        // mid-run degradation already harvested.
        let (live_retries, live_retried, live_backoff) =
            fti.disk_store().map_or((0, 0, Vec::new()), |d| {
                (d.io_retries(), d.retried_pushes(), d.backoff_log().to_vec())
            });
        let io_retries = (detached_io_retries + live_retries) as usize;
        let retried_checkpoints = (detached_retried_checkpoints + live_retried) as usize;
        let mut io_backoff_seconds = detached_backoff;
        io_backoff_seconds.extend(live_backoff);
        RunReport {
            strategy: cfg.strategy.name().to_string(),
            convergence_iterations,
            executed_iterations,
            checkpoints_taken,
            aborted_checkpoints,
            failed_checkpoints,
            retried_checkpoints,
            io_retries,
            io_backoff_seconds,
            degraded_tier,
            anchor_checkpoints,
            delta_checkpoints,
            checkpoint_bytes_trace,
            resumed_from_iteration,
            failures,
            recoveries,
            total_seconds,
            productive_seconds,
            checkpoint_seconds,
            recovery_seconds,
            rollback_seconds: rollback_seconds + rollback_compute,
            overhead_seconds: (total_seconds - productive_seconds).max(0.0),
            residual_history: solver.history().residuals().to_vec(),
            restart_iterations: solver.history().restarts().to_vec(),
            hit_iteration_limit: solver.history().limit_reached,
            mean_checkpoint_bytes: if checkpoints_taken > 0 {
                checkpoint_bytes_sum / checkpoints_taken as f64
            } else {
                0.0
            },
            mean_compression_ratio: if checkpoints_taken > 0 {
                compression_ratio_sum / checkpoints_taken as f64
            } else {
                1.0
            },
        }
    }

    /// Handles one failure: recovery from the newest complete checkpoint
    /// (in memory, or CRC-validated from the durable tier when one is
    /// attached), or restart from scratch if none is recoverable.  Returns
    /// the simulated seconds of *additional* delay beyond what the
    /// recovery read itself costs (currently 0; rollback compute is
    /// accounted by re-execution).
    #[allow(clippy::too_many_arguments)]
    fn handle_failure(
        &self,
        solver: &mut dyn IterativeMethod,
        problem: &ScaledProblem,
        fti: &mut FtiContext,
        clock: &mut SimClock,
        static_bytes: usize,
        recoveries: &mut usize,
        recovery_seconds: &mut f64,
        last_scalars: &[(String, f64)],
    ) -> f64 {
        let cfg = &self.config;
        let rec_start = clock.now();
        let restored = match fti.recover(clock, static_bytes) {
            Ok(recovered) => {
                // Decompression time at paper scale.
                let decomp = match cfg.strategy {
                    CheckpointStrategy::Traditional | CheckpointStrategy::None => 0.0,
                    _ => cfg
                        .cluster
                        .decompression_seconds(problem.paper_vector_bytes()),
                };
                clock.advance(decomp);
                // The stored payloads are the *real* (unscaled) encodings.
                // Scalars come from the durable tier when present, from
                // the runner's in-process tracking otherwise.
                let scalars = if recovered.scalars.is_empty() {
                    last_scalars
                } else {
                    recovered.scalars.as_slice()
                };
                // A non-empty tag (durable tier) from a different strategy
                // is not decodable by this one — treat as unrecoverable.
                let tag_ok =
                    recovered.tag.is_empty() || cfg.strategy.can_recover_from(&recovered.tag);
                tag_ok
                    && cfg
                        .strategy
                        .recover_chain(solver, &recovered.chain, recovered.iteration, scalars)
                        .is_ok()
            }
            Err(_) => false,
        };
        if restored {
            *recoveries += 1;
        } else {
            // No recoverable checkpoint: global restart from the initial
            // guess (the static data still has to be re-read).
            let read = cfg
                .pfs
                .read_seconds(static_bytes, cfg.cluster.ranks, cfg.level);
            clock.advance(read);
            let n = problem.system.dim();
            solver.restart_from_solution(lcr_sparse::Vector::zeros(n), 0);
        }
        *recovery_seconds += clock.now() - rec_start;
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::CheckpointStrategy;
    use crate::workload::{PaperWorkload, WorkloadKind};
    use lcr_solvers::SolverKind;

    fn small_poisson() -> (PaperWorkload, ScaledProblem) {
        let w = PaperWorkload::poisson(256, 8);
        let p = w.build();
        (w, p)
    }

    fn cluster() -> ClusterConfig {
        ClusterConfig::bebop_like(256, 0.5)
    }

    fn config(strategy: CheckpointStrategy, interval: usize, mtti: f64, seed: Option<u64>) -> RunConfig {
        RunConfig {
            strategy,
            checkpoint_interval_iterations: interval,
            anchor_interval_snapshots: 0,
            cluster: cluster(),
            pfs: PfsModel::bebop_like(),
            level: CheckpointLevel::Pfs,
            mtti_seconds: mtti,
            failure_seed: seed,
            max_failures: 50,
            max_executed_iterations: 500_000,
            num_threads: 0,
            persistence: Persistence::InMemory,
            backend: ExecutionBackend::Simulated,
        }
    }

    #[test]
    fn baseline_run_has_no_overhead() {
        let (w, p) = small_poisson();
        let mut solver = w.build_solver(&p, SolverKind::Jacobi, 100_000);
        let report = FaultTolerantRunner::new(RunConfig::baseline(cluster(), PfsModel::bebop_like()))
            .run(solver.as_mut(), &p);
        assert_eq!(report.failures, 0);
        assert_eq!(report.checkpoints_taken, 0);
        assert_eq!(report.overhead_seconds, 0.0);
        assert_eq!(report.convergence_iterations, report.executed_iterations);
        assert!(report.total_seconds > 0.0);
        assert!((report.overhead_ratio() - 0.0).abs() < 1e-12);
        assert!(!report.hit_iteration_limit);
    }

    #[test]
    fn checkpointing_without_failures_adds_only_checkpoint_time() {
        let (w, p) = small_poisson();
        let mut solver = w.build_solver(&p, SolverKind::Jacobi, 100_000);
        let cfg = config(CheckpointStrategy::Traditional, 10, f64::MAX, None);
        let report = FaultTolerantRunner::new(cfg).run(solver.as_mut(), &p);
        assert!(report.checkpoints_taken > 0);
        assert_eq!(report.failures, 0);
        assert_eq!(report.recoveries, 0);
        assert!(report.checkpoint_seconds > 0.0);
        assert!(
            (report.overhead_seconds - report.checkpoint_seconds).abs() < 1e-6,
            "overhead {} vs checkpoint {}",
            report.overhead_seconds,
            report.checkpoint_seconds
        );
        assert!((report.mean_compression_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn failures_trigger_recoveries_and_rollback() {
        let (w, p) = small_poisson();
        let mut solver = w.build_solver(&p, SolverKind::Jacobi, 200_000);
        // Jacobi on the 6³ grid needs ~100 iterations at 0.5 s each ≈ 50 s;
        // an MTTI of 20 s guarantees several failures.  Seed 11's failures
        // strike inside *completed*-checkpoint epochs, so they recover (a
        // failure during a write window aborts that checkpoint instead —
        // see interrupted_first_checkpoint_is_discarded_and_restarts_from_scratch).
        let cfg = config(CheckpointStrategy::Traditional, 5, 20.0, Some(11));
        let report = FaultTolerantRunner::new(cfg).run(solver.as_mut(), &p);
        assert!(report.failures > 0, "expected failures to be injected");
        assert!(report.recoveries > 0);
        assert!(report.executed_iterations >= report.convergence_iterations);
        assert!(report.recovery_seconds > 0.0);
        assert!(report.overhead_seconds > 0.0);
        assert!(!report.hit_iteration_limit);
    }

    #[test]
    fn lossy_strategy_recovers_and_converges_under_failures() {
        let (w, p) = small_poisson();
        let mut solver = w.build_solver(&p, SolverKind::Cg, 200_000);
        let cfg = config(CheckpointStrategy::lossy_default(), 5, 15.0, Some(11));
        let report = FaultTolerantRunner::new(cfg).run(solver.as_mut(), &p);
        assert!(report.failures > 0);
        assert!(report.recoveries > 0);
        assert!(!report.hit_iteration_limit, "CG must still converge");
        assert!(report.mean_compression_ratio > 1.5);
        assert!(!report.restart_iterations.is_empty());
    }

    #[test]
    fn lossy_checkpoint_time_is_lower_than_traditional() {
        let (w, p) = small_poisson();
        // Same failure-free run, different strategies: the lossy checkpoints
        // must be cheaper in simulated time because they are smaller.
        let mut s1 = w.build_solver(&p, SolverKind::Jacobi, 100_000);
        let trad = FaultTolerantRunner::new(config(CheckpointStrategy::Traditional, 10, f64::MAX, None))
            .run(s1.as_mut(), &p);
        let mut s2 = w.build_solver(&p, SolverKind::Jacobi, 100_000);
        let lossy = FaultTolerantRunner::new(config(CheckpointStrategy::lossy_default(), 10, f64::MAX, None))
            .run(s2.as_mut(), &p);
        assert_eq!(trad.checkpoints_taken, lossy.checkpoints_taken);
        assert!(
            lossy.checkpoint_seconds < trad.checkpoint_seconds,
            "lossy {} vs traditional {}",
            lossy.checkpoint_seconds,
            trad.checkpoint_seconds
        );
        assert!(lossy.mean_compression_ratio > 1.5);
    }

    #[test]
    fn interrupted_first_checkpoint_is_discarded_and_restarts_from_scratch() {
        // Regression for the mid-write atomicity bug: a failure striking
        // *during* the checkpoint write window must discard the checkpoint
        // (FTI semantics: only a completed write is recoverable).  The
        // sharp observable is a failure inside the *first* write window
        // with max_failures = 1: the fixed runner has nothing to recover
        // from (recoveries == 0, restart from iteration 0), while the old
        // runner committed the interrupted checkpoint first and "recovered"
        // from it (recoveries == 1, restart at the checkpoint iteration).
        let (w, p) = small_poisson();
        let mut first_window_abort_seen = false;
        for seed in 0..120 {
            let mut solver = w.build_solver(&p, SolverKind::Jacobi, 200_000);
            let mut cfg = config(CheckpointStrategy::lossy_default(), 5, 12.0, Some(seed));
            cfg.max_failures = 1;
            let report = FaultTolerantRunner::new(cfg).run(solver.as_mut(), &p);
            assert!(!report.hit_iteration_limit, "seed {seed} must converge");
            if report.failures == 1 && report.aborted_checkpoints == 1 && report.recoveries == 0
            {
                // The one failure interrupted the first-ever checkpoint:
                // the only possible rollback target is the initial guess.
                assert_eq!(
                    report.restart_iterations,
                    vec![0],
                    "seed {seed}: an interrupted checkpoint must never be a recovery target"
                );
                assert!(report.checkpoints_taken > 0, "later checkpoints commit");
                first_window_abort_seen = true;
            }
            // Whatever the failure pattern, an aborted checkpoint is never
            // double-counted as taken.
            assert!(report.aborted_checkpoints <= report.failures);
        }
        assert!(
            first_window_abort_seen,
            "no seed produced a failure inside the first checkpoint write window"
        );
    }

    #[test]
    fn failure_before_first_checkpoint_restarts_from_scratch() {
        let (w, p) = small_poisson();
        let mut solver = w.build_solver(&p, SolverKind::Jacobi, 200_000);
        // Checkpoint interval so large it never triggers; failures force a
        // restart from the initial guess.
        let mut cfg = config(CheckpointStrategy::Traditional, 1_000_000, 30.0, Some(3));
        cfg.max_failures = 2;
        let report = FaultTolerantRunner::new(cfg).run(solver.as_mut(), &p);
        assert!(report.failures >= 1);
        assert_eq!(report.recoveries, 0);
        assert_eq!(report.checkpoints_taken, 0);
        assert!(report.executed_iterations > report.convergence_iterations);
        assert!(!report.hit_iteration_limit);
    }

    #[test]
    fn original_share_distributes_the_remainder_exactly() {
        // Regression for the integer-division remainder loss: the
        // per-variable shares must sum *exactly* to the total for any
        // (total, n_variables) — `total / n` alone loses up to n-1 bytes.
        for total in [0usize, 1, 2, 16, 17, 1001, 78_800_000_001] {
            for n in 1usize..=7 {
                let shares: Vec<usize> = (0..n).map(|i| original_share(total, n, i)).collect();
                assert_eq!(
                    shares.iter().sum::<usize>(),
                    total,
                    "total {total} over {n} variables: {shares:?}"
                );
                // Shares differ by at most one byte and are ordered
                // largest-first (the remainder goes to the first ones).
                assert!(shares.windows(2).all(|w| w[0] >= w[1] && w[0] - w[1] <= 1));
            }
        }
    }

    #[test]
    fn per_variable_originals_sum_exactly_to_the_paper_scale_total() {
        // End-to-end companion of original_share_distributes_the_remainder:
        // the durable tier persists the summed per-variable originals, so
        // the metadata of a CG checkpoint (two protected variables: x, p)
        // must carry exactly the paper-scale original the runner computed.
        let (w, p) = small_poisson();
        let dir = std::env::temp_dir().join(format!("lcr-remainder-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut solver = w.build_solver(&p, SolverKind::Cg, 200_000);
        let mut cfg = config(CheckpointStrategy::Traditional, 10, f64::MAX, None);
        cfg.persistence = Persistence::disk(&dir);
        cfg.max_executed_iterations = 15;
        FaultTolerantRunner::new(cfg).run(solver.as_mut(), &p);

        // Expected paper-scale original, recomputed the way the runner
        // does it: every dynamic vector at 8 bytes/element, scaled.
        let n = p.system.dim();
        let expected = (2.0 * n as f64 * 8.0 * p.byte_scale_factor()) as usize;

        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|f| f.extension().is_some_and(|e| e == "lcr"))
            .collect();
        files.sort();
        let ckpt = lcr_ckpt::disk::read_checkpoint_file(files.last().unwrap()).unwrap();
        assert_eq!(ckpt.payloads.len(), 2, "CG checkpoints x and p");
        assert_eq!(
            ckpt.metadata.original_bytes, expected,
            "per-variable originals must sum to the paper-scale total"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reports_are_deterministic_for_fixed_seed() {
        let (w, p) = small_poisson();
        let run = |seed| {
            let mut solver = w.build_solver(&p, SolverKind::Jacobi, 200_000);
            FaultTolerantRunner::new(config(
                CheckpointStrategy::lossy_default(),
                5,
                25.0,
                Some(seed),
            ))
            .run(solver.as_mut(), &p)
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.executed_iterations, b.executed_iterations);
        assert!((a.total_seconds - b.total_seconds).abs() < 1e-9);
        let c = run(6);
        // Different seed almost surely gives a different failure pattern.
        assert!(
            a.failures != c.failures
                || a.executed_iterations != c.executed_iterations
                || (a.total_seconds - c.total_seconds).abs() > 1e-9
        );
    }

    #[test]
    fn delta_checkpoints_appear_between_anchors_and_shrink_the_stream() {
        let (w, p) = small_poisson();
        let mut solver = w.build_solver(&p, SolverKind::Cg, 200_000);
        let mut cfg = config(CheckpointStrategy::lossy_default(), 5, f64::MAX, None);
        cfg.anchor_interval_snapshots = 4;
        let report = FaultTolerantRunner::new(cfg).run(solver.as_mut(), &p);
        assert!(report.checkpoints_taken >= 4, "need a few checkpoints");
        assert_eq!(
            report.anchor_checkpoints + report.delta_checkpoints,
            report.checkpoints_taken
        );
        assert!(
            report.delta_checkpoints > 0,
            "a converging CG run must produce delta checkpoints between anchors"
        );
        // Every 4th snapshot is a forced anchor, so at least ⌈n/4⌉ anchors.
        assert!(report.anchor_checkpoints >= report.checkpoints_taken.div_ceil(4));
        assert_eq!(
            report.checkpoint_bytes_trace.len(),
            report.checkpoints_taken
        );
        // The first checkpoint is always an anchor; deltas are only kept
        // when smaller, so the smallest trace entry must undercut the
        // first anchor whenever any delta committed.
        let anchor0 = report.checkpoint_bytes_trace[0];
        let min = *report.checkpoint_bytes_trace.iter().min().unwrap();
        assert!(
            min < anchor0,
            "smallest delta payload {min} must undercut the anchor {anchor0}"
        );
    }

    #[test]
    fn delta_run_without_failures_matches_anchor_only_convergence() {
        // Checkpoint encoding must never perturb the solver: with no
        // failures, a delta-enabled run converges identically (same
        // iteration count, same residual history) to an anchor-only run.
        let (w, p) = small_poisson();
        let mut s1 = w.build_solver(&p, SolverKind::Cg, 200_000);
        let plain = FaultTolerantRunner::new(config(
            CheckpointStrategy::lossy_default(),
            5,
            f64::MAX,
            None,
        ))
        .run(s1.as_mut(), &p);
        let mut s2 = w.build_solver(&p, SolverKind::Cg, 200_000);
        let mut cfg = config(CheckpointStrategy::lossy_default(), 5, f64::MAX, None);
        cfg.anchor_interval_snapshots = 4;
        let delta = FaultTolerantRunner::new(cfg).run(s2.as_mut(), &p);
        assert_eq!(plain.convergence_iterations, delta.convergence_iterations);
        assert_eq!(plain.residual_history, delta.residual_history);
        assert_eq!(plain.checkpoints_taken, delta.checkpoints_taken);
        // The delta run writes no more bytes than the anchor-only run.
        assert!(delta.mean_checkpoint_bytes <= plain.mean_checkpoint_bytes);
    }

    #[test]
    fn delta_run_recovers_and_converges_under_failures() {
        let (w, p) = small_poisson();
        let mut solver = w.build_solver(&p, SolverKind::Cg, 200_000);
        let mut cfg = config(CheckpointStrategy::lossy_default(), 5, 15.0, Some(11));
        cfg.anchor_interval_snapshots = 3;
        let report = FaultTolerantRunner::new(cfg).run(solver.as_mut(), &p);
        assert!(report.failures > 0);
        assert!(report.recoveries > 0);
        assert!(!report.hit_iteration_limit, "CG must still converge");
        // After every recovery the selector resets, so the checkpoint
        // immediately after a restart is an anchor — the chain never spans
        // a rollback.
        assert!(report.anchor_checkpoints > 0);
    }

    #[test]
    fn fresh_runner_resumes_from_a_disk_delta_chain() {
        // Phase 1 stops mid-solve with delta chains on disk; phase 2 is a
        // brand-new runner that must replay the newest chain (anchor +
        // deltas) to resume — the end-to-end proof that chain recovery
        // works through the durable tier.
        let (w, p) = small_poisson();
        let dir = std::env::temp_dir().join(format!("lcr-delta-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = config(CheckpointStrategy::lossy_default(), 5, f64::MAX, None);
        cfg.anchor_interval_snapshots = 4;
        cfg.persistence = Persistence::disk(&dir);
        cfg.max_executed_iterations = 18;
        let mut s1 = w.build_solver(&p, SolverKind::Cg, 200_000);
        let phase1 = FaultTolerantRunner::new(cfg.clone()).run(s1.as_mut(), &p);
        assert_eq!(
            phase1.executed_iterations, 18,
            "phase 1 must stop mid-solve"
        );
        assert!(
            phase1.delta_checkpoints > 0,
            "phase 1 must leave a delta chain behind"
        );

        cfg.max_executed_iterations = 500_000;
        let mut s2 = w.build_solver(&p, SolverKind::Cg, 200_000);
        let phase2 = FaultTolerantRunner::new(cfg).run(s2.as_mut(), &p);
        let resumed = phase2
            .resumed_from_iteration
            .expect("phase 2 must resume from the disk chain");
        assert!(resumed > 0 && resumed <= 18);
        assert!(!phase2.hit_iteration_limit, "resumed run converges");
        assert!(phase2.convergence_iterations > resumed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workload_kind_is_exposed() {
        // Silence the unused-import lint for WorkloadKind while documenting
        // that the runner works for both workload families.
        assert_ne!(WorkloadKind::Poisson3d, WorkloadKind::Kkt);
    }
}
