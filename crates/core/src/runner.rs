//! Fault-tolerant execution driver.
//!
//! [`FaultTolerantRunner`] executes an iterative solver under a checkpoint
//! strategy in the presence of injected fail-stop failures, on the
//! simulated clock:
//!
//! * every solver iteration advances the clock by the cluster's
//!   per-iteration cost and is *really* executed (so convergence effects of
//!   lossy recoveries are genuine, not modelled);
//! * every `checkpoint_interval_iterations` iterations the strategy encodes
//!   the dynamic state; the clock is charged with the compression time
//!   (from the cluster's throughput model) and the PFS write time for the
//!   *paper-scale* equivalent of the encoded bytes;
//! * failures strike according to the exponential injector at any point —
//!   during computation, checkpointing or recovery, as in §5.4; when one
//!   strikes, the run rolls back to the last checkpoint: the strategy
//!   decodes it (restore or restart), the clock is charged with the
//!   recovery read + decompression time, and the iterations since that
//!   checkpoint are re-executed by the solver loop itself (the rollback
//!   cost of the model);
//! * if a failure strikes before any checkpoint exists, the run restarts
//!   from the initial guess.
//!
//! The outcome is a [`RunReport`] with the timing breakdown the paper's
//! Figures 8–10 are built from.

use crate::strategy::CheckpointStrategy;
use crate::workload::ScaledProblem;
use lcr_ckpt::{
    CheckpointBuffer, CheckpointLevel, ClusterConfig, FailureInjector, FtiContext, PfsModel,
    SimClock,
};
use lcr_solvers::IterativeMethod;
use serde::{Deserialize, Serialize};

/// Configuration of one fault-tolerant run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The checkpoint strategy to use.
    pub strategy: CheckpointStrategy,
    /// Checkpoint every this many solver iterations (0 disables periodic
    /// checkpointing, e.g. for the failure-free baseline).
    pub checkpoint_interval_iterations: usize,
    /// Simulated cluster.
    pub cluster: ClusterConfig,
    /// Parallel-file-system model.
    pub pfs: PfsModel,
    /// Storage level checkpoints are written to.
    pub level: CheckpointLevel,
    /// Mean time to interruption in seconds (`f64::INFINITY` or a huge
    /// value with `failure_seed = None` for failure-free runs).
    pub mtti_seconds: f64,
    /// Seed for the failure injector; `None` disables failure injection.
    pub failure_seed: Option<u64>,
    /// Safety cap on the number of failures processed (guards against
    /// pathological configurations that can never finish).
    pub max_failures: usize,
    /// Safety cap on executed iterations (including re-executed ones).
    pub max_executed_iterations: usize,
    /// Worker threads for the shared-memory kernels (BLAS-1, SpMV, the
    /// compressors) during this run; `0` inherits the process-wide setting
    /// (`LCR_NUM_THREADS`, defaulting to the available parallelism).
    /// Results are bit-identical at any value — the kernels use
    /// deterministic fixed-chunk scheduling — so this only trades time for
    /// cores.
    pub num_threads: usize,
}

impl RunConfig {
    /// A failure-free baseline configuration (no checkpoints, no failures).
    pub fn baseline(cluster: ClusterConfig, pfs: PfsModel) -> Self {
        RunConfig {
            strategy: CheckpointStrategy::None,
            checkpoint_interval_iterations: 0,
            cluster,
            pfs,
            level: CheckpointLevel::Pfs,
            mtti_seconds: f64::MAX,
            failure_seed: None,
            max_failures: 0,
            max_executed_iterations: 10_000_000,
            num_threads: 0,
        }
    }
}

/// Outcome of one fault-tolerant run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Strategy name ("none", "traditional", "lossless", "lossy").
    pub strategy: String,
    /// Iterations the solver needed to converge (its final iteration
    /// counter — the paper's "number of convergence iterations").
    pub convergence_iterations: usize,
    /// Total iterations actually executed, including rollback re-execution.
    pub executed_iterations: usize,
    /// Number of checkpoints written.
    pub checkpoints_taken: usize,
    /// Number of failures injected.
    pub failures: usize,
    /// Number of recoveries performed (≤ failures; a failure before the
    /// first checkpoint restarts from scratch instead).
    pub recoveries: usize,
    /// Total simulated wall-clock seconds.
    pub total_seconds: f64,
    /// Simulated seconds of productive computation (convergence_iterations
    /// × iteration time).
    pub productive_seconds: f64,
    /// Simulated seconds spent writing checkpoints (including compression).
    pub checkpoint_seconds: f64,
    /// Simulated seconds spent in recovery I/O (including decompression).
    pub recovery_seconds: f64,
    /// Simulated seconds of re-executed (rolled-back) computation.
    pub rollback_seconds: f64,
    /// Fault-tolerance overhead: `total - productive` (the paper's metric).
    pub overhead_seconds: f64,
    /// Residual-norm history of the run (for Figure 9 traces).
    pub residual_history: Vec<f64>,
    /// Iterations at which recoveries/restarts occurred.
    pub restart_iterations: Vec<usize>,
    /// Whether the solver hit its iteration limit instead of converging.
    pub hit_iteration_limit: bool,
    /// Mean encoded checkpoint bytes (paper-scale) per checkpoint.
    pub mean_checkpoint_bytes: f64,
    /// Mean compression ratio across checkpoints (1.0 for traditional).
    pub mean_compression_ratio: f64,
}

impl RunReport {
    /// Fault-tolerance overhead as a fraction of productive time.
    pub fn overhead_ratio(&self) -> f64 {
        if self.productive_seconds <= 0.0 {
            return 0.0;
        }
        self.overhead_seconds / self.productive_seconds
    }
}

/// Restores the calling thread's active-thread cap when a run ends.
struct ThreadLimitGuard(usize);

impl Drop for ThreadLimitGuard {
    fn drop(&mut self) {
        rayon::set_max_active_threads(self.0);
    }
}

/// The fault-tolerant execution driver.
pub struct FaultTolerantRunner {
    config: RunConfig,
}

impl FaultTolerantRunner {
    /// Creates a runner for the given configuration.
    pub fn new(config: RunConfig) -> Self {
        FaultTolerantRunner { config }
    }

    /// The configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Executes `solver` to convergence under failures and checkpointing,
    /// using `problem` for paper-scale byte accounting.
    ///
    /// # Panics
    /// Panics if the configuration enables failures without a checkpoint
    /// strategy able to make progress (guarded by `max_failures` /
    /// `max_executed_iterations` instead of hanging).
    pub fn run(
        &self,
        solver: &mut dyn IterativeMethod,
        problem: &ScaledProblem,
    ) -> RunReport {
        let cfg = &self.config;
        // Pin the kernel thread count for the duration of the run if the
        // config asks for one; restored on every exit path by the guard.
        let _threads = (cfg.num_threads > 0).then(|| {
            let guard = ThreadLimitGuard(rayon::max_active_threads());
            rayon::set_max_active_threads(cfg.num_threads);
            guard
        });
        let mut clock = SimClock::new();
        let mut injector = match cfg.failure_seed {
            Some(seed) if cfg.mtti_seconds.is_finite() => {
                FailureInjector::new(cfg.mtti_seconds, seed)
            }
            _ => FailureInjector::never(),
        };
        let mut fti = FtiContext::new(cfg.cluster, cfg.pfs, cfg.level);
        // Store real payloads, bill I/O time at the paper's scale.
        let byte_scale = problem.byte_scale_factor();
        fti.set_byte_scale(byte_scale);
        // Static variables: the matrix and preconditioner are regenerated
        // from the problem definition during recovery (as in the paper's
        // PETSc set-up); the I/O cost charged is re-reading the right-hand
        // side, i.e. one paper-scale vector.
        let static_bytes = problem.paper_vector_bytes();

        let mut executed_iterations = 0usize;
        let mut checkpoint_seconds = 0.0f64;
        let mut recovery_seconds = 0.0f64;
        let mut rollback_seconds = 0.0f64;
        let mut failures = 0usize;
        let mut recoveries = 0usize;
        let mut checkpoint_bytes_sum = 0.0f64;
        let mut compression_ratio_sum = 0.0f64;
        let mut checkpoints_taken = 0usize;
        // Iteration count at the last successful checkpoint (None before
        // the first checkpoint).
        let mut last_checkpoint_iteration: Option<usize> = None;
        // Scalars stored alongside the last checkpoint (needed by the exact
        // recovery path).
        let mut last_checkpoint_scalars: Vec<(String, f64)> = Vec::new();
        // Reusable checkpoint-encoding arena: after the first checkpoint
        // the encode side writes into already-sized memory, and each
        // payload is copied exactly once (arena -> FTI store) with no
        // intermediate per-variable buffers.
        let mut ckpt_buffer = CheckpointBuffer::new();

        let t_it = cfg.cluster.iteration_seconds;

        'outer: while !solver.converged() {
            if executed_iterations >= cfg.max_executed_iterations {
                break;
            }
            // --- one solver iteration -------------------------------------
            let start = clock.now();
            solver.step();
            executed_iterations += 1;
            clock.advance(t_it);
            if injector.fails_during(start, clock.now()) && failures < cfg.max_failures {
                failures += 1;
                let wasted = self.handle_failure(
                    solver,
                    problem,
                    &mut fti,
                    &mut clock,
                    static_bytes,
                    &mut recoveries,
                    &mut recovery_seconds,
                    &last_checkpoint_scalars,
                    last_checkpoint_iteration,
                );
                rollback_seconds += wasted;
                continue 'outer;
            }

            // --- periodic checkpoint ---------------------------------------
            let interval = cfg.checkpoint_interval_iterations;
            if interval > 0
                && solver.iteration() > 0
                && solver.iteration().is_multiple_of(interval)
                && !solver.converged()
                && !matches!(cfg.strategy, CheckpointStrategy::None)
            {
                let encoded = match cfg.strategy.encode_into(solver, &mut ckpt_buffer) {
                    Ok(meta) => meta,
                    Err(_) => continue,
                };
                // Compression time at paper scale.
                let paper_original = (encoded.original_bytes as f64 * byte_scale) as usize;
                let comp_secs = match cfg.strategy {
                    CheckpointStrategy::Traditional | CheckpointStrategy::None => 0.0,
                    _ => cfg.cluster.compression_seconds(paper_original),
                };
                let ckpt_start = clock.now();
                clock.advance(comp_secs);
                // Register each saved variable with its paper-scale
                // original size so the metadata reports Table-3-style
                // per-variable numbers.
                let per_variable_original = if ckpt_buffer.is_empty() {
                    0
                } else {
                    paper_original / ckpt_buffer.n_variables()
                };
                for (name, _) in ckpt_buffer.segments() {
                    fti.protect(name, per_variable_original);
                }
                let (meta, write_secs) =
                    fti.snapshot_from_buffer(&mut clock, encoded.iteration, &ckpt_buffer);
                checkpoint_seconds += clock.now() - ckpt_start;
                checkpoints_taken += 1;
                checkpoint_bytes_sum += meta.total_bytes as f64;
                compression_ratio_sum += meta.compression_ratio();
                last_checkpoint_iteration = Some(encoded.iteration);
                last_checkpoint_scalars = encoded.scalars;
                let _ = write_secs;

                if injector.fails_during(ckpt_start, clock.now()) && failures < cfg.max_failures
                {
                    failures += 1;
                    let wasted = self.handle_failure(
                        solver,
                        problem,
                        &mut fti,
                        &mut clock,
                        static_bytes,
                        &mut recoveries,
                        &mut recovery_seconds,
                        &last_checkpoint_scalars,
                        last_checkpoint_iteration,
                    );
                    rollback_seconds += wasted;
                    continue 'outer;
                }
            }
        }

        let convergence_iterations = solver.iteration();
        let productive_seconds = convergence_iterations as f64 * t_it;
        let rollback_compute =
            (executed_iterations.saturating_sub(convergence_iterations)) as f64 * t_it;
        let total_seconds = clock.now();
        RunReport {
            strategy: cfg.strategy.name().to_string(),
            convergence_iterations,
            executed_iterations,
            checkpoints_taken,
            failures,
            recoveries,
            total_seconds,
            productive_seconds,
            checkpoint_seconds,
            recovery_seconds,
            rollback_seconds: rollback_seconds + rollback_compute,
            overhead_seconds: (total_seconds - productive_seconds).max(0.0),
            residual_history: solver.history().residuals().to_vec(),
            restart_iterations: solver.history().restarts().to_vec(),
            hit_iteration_limit: solver.history().limit_reached,
            mean_checkpoint_bytes: if checkpoints_taken > 0 {
                checkpoint_bytes_sum / checkpoints_taken as f64
            } else {
                0.0
            },
            mean_compression_ratio: if checkpoints_taken > 0 {
                compression_ratio_sum / checkpoints_taken as f64
            } else {
                1.0
            },
        }
    }

    /// Handles one failure: recovery from the last checkpoint (or restart
    /// from scratch if none exists).  Returns the simulated seconds of
    /// *additional* delay beyond what the recovery read itself costs
    /// (currently 0; rollback compute is accounted by re-execution).
    #[allow(clippy::too_many_arguments)]
    fn handle_failure(
        &self,
        solver: &mut dyn IterativeMethod,
        problem: &ScaledProblem,
        fti: &mut FtiContext,
        clock: &mut SimClock,
        static_bytes: usize,
        recoveries: &mut usize,
        recovery_seconds: &mut f64,
        last_scalars: &[(String, f64)],
        last_checkpoint_iteration: Option<usize>,
    ) -> f64 {
        let cfg = &self.config;
        match (last_checkpoint_iteration, fti.store().is_empty()) {
            (Some(iteration), false) => {
                let rec_start = clock.now();
                let recovered = fti
                    .recover(clock, static_bytes)
                    .expect("checkpoint store verified non-empty");
                // Decompression time at paper scale.
                let decomp = match cfg.strategy {
                    CheckpointStrategy::Traditional | CheckpointStrategy::None => 0.0,
                    _ => cfg
                        .cluster
                        .decompression_seconds(problem.paper_vector_bytes()),
                };
                clock.advance(decomp);
                // The stored payloads are the *real* (unscaled) encodings.
                let payloads: Vec<(String, Vec<u8>)> = recovered.payloads;
                cfg.strategy
                    .recover(solver, &payloads, iteration, last_scalars)
                    .expect("recovery from a checkpoint this runner wrote");
                *recoveries += 1;
                *recovery_seconds += clock.now() - rec_start;
                0.0
            }
            _ => {
                // No checkpoint yet: global restart from the initial guess.
                let rec_start = clock.now();
                let read = cfg.pfs.read_seconds(static_bytes, cfg.cluster.ranks, cfg.level);
                clock.advance(read);
                let n = problem.system.dim();
                solver.restart_from_solution(lcr_sparse::Vector::zeros(n), 0);
                *recovery_seconds += clock.now() - rec_start;
                0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::CheckpointStrategy;
    use crate::workload::{PaperWorkload, WorkloadKind};
    use lcr_solvers::SolverKind;

    fn small_poisson() -> (PaperWorkload, ScaledProblem) {
        let w = PaperWorkload::poisson(256, 8);
        let p = w.build();
        (w, p)
    }

    fn cluster() -> ClusterConfig {
        ClusterConfig::bebop_like(256, 0.5)
    }

    fn config(strategy: CheckpointStrategy, interval: usize, mtti: f64, seed: Option<u64>) -> RunConfig {
        RunConfig {
            strategy,
            checkpoint_interval_iterations: interval,
            cluster: cluster(),
            pfs: PfsModel::bebop_like(),
            level: CheckpointLevel::Pfs,
            mtti_seconds: mtti,
            failure_seed: seed,
            max_failures: 50,
            max_executed_iterations: 500_000,
            num_threads: 0,
        }
    }

    #[test]
    fn baseline_run_has_no_overhead() {
        let (w, p) = small_poisson();
        let mut solver = w.build_solver(&p, SolverKind::Jacobi, 100_000);
        let report = FaultTolerantRunner::new(RunConfig::baseline(cluster(), PfsModel::bebop_like()))
            .run(solver.as_mut(), &p);
        assert_eq!(report.failures, 0);
        assert_eq!(report.checkpoints_taken, 0);
        assert_eq!(report.overhead_seconds, 0.0);
        assert_eq!(report.convergence_iterations, report.executed_iterations);
        assert!(report.total_seconds > 0.0);
        assert!((report.overhead_ratio() - 0.0).abs() < 1e-12);
        assert!(!report.hit_iteration_limit);
    }

    #[test]
    fn checkpointing_without_failures_adds_only_checkpoint_time() {
        let (w, p) = small_poisson();
        let mut solver = w.build_solver(&p, SolverKind::Jacobi, 100_000);
        let cfg = config(CheckpointStrategy::Traditional, 10, f64::MAX, None);
        let report = FaultTolerantRunner::new(cfg).run(solver.as_mut(), &p);
        assert!(report.checkpoints_taken > 0);
        assert_eq!(report.failures, 0);
        assert_eq!(report.recoveries, 0);
        assert!(report.checkpoint_seconds > 0.0);
        assert!(
            (report.overhead_seconds - report.checkpoint_seconds).abs() < 1e-6,
            "overhead {} vs checkpoint {}",
            report.overhead_seconds,
            report.checkpoint_seconds
        );
        assert!((report.mean_compression_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn failures_trigger_recoveries_and_rollback() {
        let (w, p) = small_poisson();
        let mut solver = w.build_solver(&p, SolverKind::Jacobi, 200_000);
        // Jacobi on the 6³ grid needs ~100 iterations at 0.5 s each ≈ 50 s;
        // an MTTI of 20 s guarantees several failures.
        let cfg = config(CheckpointStrategy::Traditional, 5, 20.0, Some(7));
        let report = FaultTolerantRunner::new(cfg).run(solver.as_mut(), &p);
        assert!(report.failures > 0, "expected failures to be injected");
        assert!(report.recoveries > 0);
        assert!(report.executed_iterations >= report.convergence_iterations);
        assert!(report.recovery_seconds > 0.0);
        assert!(report.overhead_seconds > 0.0);
        assert!(!report.hit_iteration_limit);
    }

    #[test]
    fn lossy_strategy_recovers_and_converges_under_failures() {
        let (w, p) = small_poisson();
        let mut solver = w.build_solver(&p, SolverKind::Cg, 200_000);
        let cfg = config(CheckpointStrategy::lossy_default(), 5, 15.0, Some(11));
        let report = FaultTolerantRunner::new(cfg).run(solver.as_mut(), &p);
        assert!(report.failures > 0);
        assert!(report.recoveries > 0);
        assert!(!report.hit_iteration_limit, "CG must still converge");
        assert!(report.mean_compression_ratio > 1.5);
        assert!(!report.restart_iterations.is_empty());
    }

    #[test]
    fn lossy_checkpoint_time_is_lower_than_traditional() {
        let (w, p) = small_poisson();
        // Same failure-free run, different strategies: the lossy checkpoints
        // must be cheaper in simulated time because they are smaller.
        let mut s1 = w.build_solver(&p, SolverKind::Jacobi, 100_000);
        let trad = FaultTolerantRunner::new(config(CheckpointStrategy::Traditional, 10, f64::MAX, None))
            .run(s1.as_mut(), &p);
        let mut s2 = w.build_solver(&p, SolverKind::Jacobi, 100_000);
        let lossy = FaultTolerantRunner::new(config(CheckpointStrategy::lossy_default(), 10, f64::MAX, None))
            .run(s2.as_mut(), &p);
        assert_eq!(trad.checkpoints_taken, lossy.checkpoints_taken);
        assert!(
            lossy.checkpoint_seconds < trad.checkpoint_seconds,
            "lossy {} vs traditional {}",
            lossy.checkpoint_seconds,
            trad.checkpoint_seconds
        );
        assert!(lossy.mean_compression_ratio > 1.5);
    }

    #[test]
    fn failure_before_first_checkpoint_restarts_from_scratch() {
        let (w, p) = small_poisson();
        let mut solver = w.build_solver(&p, SolverKind::Jacobi, 200_000);
        // Checkpoint interval so large it never triggers; failures force a
        // restart from the initial guess.
        let mut cfg = config(CheckpointStrategy::Traditional, 1_000_000, 30.0, Some(3));
        cfg.max_failures = 2;
        let report = FaultTolerantRunner::new(cfg).run(solver.as_mut(), &p);
        assert!(report.failures >= 1);
        assert_eq!(report.recoveries, 0);
        assert_eq!(report.checkpoints_taken, 0);
        assert!(report.executed_iterations > report.convergence_iterations);
        assert!(!report.hit_iteration_limit);
    }

    #[test]
    fn reports_are_deterministic_for_fixed_seed() {
        let (w, p) = small_poisson();
        let run = |seed| {
            let mut solver = w.build_solver(&p, SolverKind::Jacobi, 200_000);
            FaultTolerantRunner::new(config(
                CheckpointStrategy::lossy_default(),
                5,
                25.0,
                Some(seed),
            ))
            .run(solver.as_mut(), &p)
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.executed_iterations, b.executed_iterations);
        assert!((a.total_seconds - b.total_seconds).abs() < 1e-9);
        let c = run(6);
        // Different seed almost surely gives a different failure pattern.
        assert!(
            a.failures != c.failures
                || a.executed_iterations != c.executed_iterations
                || (a.total_seconds - c.total_seconds).abs() > 1e-9
        );
    }

    #[test]
    fn workload_kind_is_exposed() {
        // Silence the unused-import lint for WorkloadKind while documenting
        // that the runner works for both workload families.
        assert_ne!(WorkloadKind::Poisson3d, WorkloadKind::Kkt);
    }
}
