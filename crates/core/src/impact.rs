//! Convergence impact of a single lossy recovery (§4.4.3, Figure 2).
//!
//! The paper measures, for the CG method, the average number of extra
//! iterations caused by one lossy recovery: in each trial an iteration is
//! picked at random, the approximate solution vector is compressed and
//! decompressed with a given relative error bound, the solver restarts from
//! the perturbed vector, and the delay to convergence (relative to the
//! clean run) is recorded.  Figure 2 plots the average delay against the
//! error bound (1e-3 … 1e-6 → roughly 25 % … 10 % of the total iterations).
//!
//! The same experiment applies unchanged to the other solvers, which is how
//! the §4.4.1 (stationary) and §4.4.2 (GMRES) findings are validated
//! empirically.

use crate::strategy::{CheckpointStrategy, ErrorBoundPolicy, LossyCodecKind};
use crate::workload::{PaperWorkload, ScaledProblem};
use lcr_compress::ErrorBound;
use lcr_solvers::SolverKind;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Result of the lossy-recovery impact experiment for one error bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpactResult {
    /// Solver evaluated.
    pub solver: String,
    /// Relative error bound used for the lossy compression.
    pub error_bound: f64,
    /// Iterations the failure-free run needs.
    pub clean_iterations: usize,
    /// Mean extra iterations across trials.
    pub mean_extra_iterations: f64,
    /// Maximum extra iterations observed.
    pub max_extra_iterations: usize,
    /// Mean extra iterations as a fraction of the clean iteration count.
    pub mean_extra_fraction: f64,
    /// Number of trials.
    pub trials: usize,
}

/// Runs the Figure 2 experiment: `trials` lossy recoveries at random
/// iterations for the given solver and error bound.
///
/// # Panics
/// Panics if `trials` is zero or the clean run does not converge.
pub fn lossy_recovery_impact(
    workload: &PaperWorkload,
    problem: &ScaledProblem,
    solver_kind: SolverKind,
    relative_error_bound: f64,
    trials: usize,
    seed: u64,
    max_iterations: usize,
) -> ImpactResult {
    assert!(trials > 0, "need at least one trial");

    // Clean (failure-free) reference run.
    let mut clean = workload.build_solver(problem, solver_kind, max_iterations);
    clean.run_to_convergence();
    assert!(
        !clean.history().limit_reached,
        "clean run must converge within the iteration limit"
    );
    let clean_iterations = clean.iteration();

    let strategy = CheckpointStrategy::Lossy {
        codec: LossyCodecKind::Sz,
        policy: ErrorBoundPolicy::Fixed(ErrorBound::PointwiseRel(relative_error_bound)),
    };

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut total_extra = 0.0f64;
    let mut max_extra = 0usize;
    for _ in 0..trials {
        // Pick the restart iteration uniformly in the middle 80 % of the
        // clean run (restarting at iteration 0 or at convergence is not a
        // meaningful recovery).
        let lo = (clean_iterations / 10).max(1);
        let hi = (clean_iterations * 9 / 10).max(lo + 1);
        let restart_at = rng.gen_range(lo..hi);

        let mut solver = workload.build_solver(problem, solver_kind, max_iterations);
        for _ in 0..restart_at {
            solver.step();
        }
        // Compress + decompress the current solution and restart from it.
        let encoded = strategy.encode(solver.as_ref()).expect("encode x");
        strategy
            .recover(
                solver.as_mut(),
                &encoded.payloads,
                encoded.iteration,
                &encoded.scalars,
            )
            .expect("recover from freshly encoded checkpoint");
        solver.run_to_convergence();
        assert!(
            !solver.history().limit_reached,
            "perturbed run must still converge"
        );
        let extra = solver.iteration().saturating_sub(clean_iterations);
        total_extra += extra as f64;
        max_extra = max_extra.max(extra);
    }

    let mean_extra = total_extra / trials as f64;
    ImpactResult {
        solver: solver_kind.name().to_string(),
        error_bound: relative_error_bound,
        clean_iterations,
        mean_extra_iterations: mean_extra,
        max_extra_iterations: max_extra,
        mean_extra_fraction: mean_extra / clean_iterations as f64,
        trials,
    }
}

/// Runs the full Figure 2 sweep (several error bounds) for one solver.
pub fn figure2_sweep(
    workload: &PaperWorkload,
    problem: &ScaledProblem,
    solver_kind: SolverKind,
    error_bounds: &[f64],
    trials: usize,
    seed: u64,
    max_iterations: usize,
) -> Vec<ImpactResult> {
    error_bounds
        .iter()
        .map(|&eb| {
            lossy_recovery_impact(
                workload,
                problem,
                solver_kind,
                eb,
                trials,
                seed ^ eb.to_bits(),
                max_iterations,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_extra_iterations_grow_with_error_bound() {
        let w = PaperWorkload::poisson(256, 7);
        let p = w.build();
        let loose = lossy_recovery_impact(&w, &p, SolverKind::Cg, 1e-2, 4, 1, 100_000);
        let tight = lossy_recovery_impact(&w, &p, SolverKind::Cg, 1e-8, 4, 1, 100_000);
        assert_eq!(loose.solver, "cg");
        assert!(loose.clean_iterations > 0);
        // A looser bound can only hurt more (or equally).
        assert!(
            loose.mean_extra_iterations >= tight.mean_extra_iterations,
            "loose {} vs tight {}",
            loose.mean_extra_iterations,
            tight.mean_extra_iterations
        );
        // Both still converge with a bounded delay.
        assert!(loose.mean_extra_fraction < 1.0);
    }

    #[test]
    fn jacobi_delay_is_negligible_at_paper_bound() {
        // §4.4.1 / Figure 8: Jacobi with eb = 1e-4 sees essentially no
        // extra iterations.
        let w = PaperWorkload::poisson(256, 7);
        let p = w.build();
        let res = lossy_recovery_impact(&w, &p, SolverKind::Jacobi, 1e-4, 3, 2, 200_000);
        assert!(
            res.mean_extra_fraction < 0.05,
            "Jacobi extra fraction {}",
            res.mean_extra_fraction
        );
    }

    #[test]
    fn gmres_delay_is_small_with_theorem3_scale_bound() {
        let w = PaperWorkload::poisson(256, 6);
        let p = w.build();
        let res = lossy_recovery_impact(&w, &p, SolverKind::Gmres, 1e-5, 3, 3, 200_000);
        assert!(
            res.mean_extra_fraction < 0.5,
            "GMRES extra fraction {}",
            res.mean_extra_fraction
        );
    }

    #[test]
    fn figure2_sweep_produces_one_row_per_bound() {
        let w = PaperWorkload::poisson(256, 6);
        let p = w.build();
        let rows = figure2_sweep(&w, &p, SolverKind::Cg, &[1e-3, 1e-5], 2, 9, 100_000);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].error_bound, 1e-3);
        assert_eq!(rows[1].error_bound, 1e-5);
        assert_eq!(rows[0].trials, 2);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let w = PaperWorkload::poisson(256, 6);
        let p = w.build();
        let _ = lossy_recovery_impact(&w, &p, SolverKind::Cg, 1e-4, 0, 1, 1000);
    }
}
