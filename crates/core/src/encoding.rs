//! Anchored temporal-delta checkpoint selection.
//!
//! The lossy (SZ) strategy can encode checkpoint *k*'s quantization codes
//! as temporal deltas against checkpoint *k−1*'s codes — smaller streams
//! on converging solvers, at the cost of a recovery that replays the
//! chain from the nearest self-contained *anchor* (see `lcr_compress`'s
//! delta module).  [`TemporalEncodingSelector`] owns the policy side of
//! that trade:
//!
//! * every `anchor_interval` snapshots one anchor is **forced**, bounding
//!   the chain length (and hence recovery read amplification) to at most
//!   `anchor_interval` links;
//! * between anchors the compressor is *allowed* (never required) to
//!   delta-code: it keeps whichever encoding is smaller per stream, so a
//!   delta checkpoint is only ever written when it actually wins;
//! * the per-variable compressor state (the previous snapshots' codes) is
//!   retained here between checkpoints, and [`reset`] drops it whenever
//!   the chain is broken — a recovery, an aborted write, or a failed
//!   commit — forcing the next checkpoint back to an anchor that the
//!   store can actually decode.
//!
//! [`reset`]: TemporalEncodingSelector::reset

use lcr_compress::{DeltaMode, SzTemporalState};

/// Decides, per checkpoint, whether the SZ encoder may temporal-delta
/// against the previous checkpoint and carries the encoder state between
/// checkpoints.
///
/// Variable states are kept in a name-keyed vector (not a hash map) so
/// iteration order — and therefore every byte the encoder emits — is
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct TemporalEncodingSelector {
    /// Force an anchor every this many snapshots; `0` or `1` disables
    /// delta coding entirely (every checkpoint is an anchor).
    anchor_interval: usize,
    /// Highest delta order the encoder may choose.
    max_order: DeltaMode,
    /// Snapshots encoded since the last [`TemporalEncodingSelector::reset`].
    snapshot_index: usize,
    /// Retained compressor state per protected variable.
    states: Vec<(String, SzTemporalState)>,
}

impl TemporalEncodingSelector {
    /// Creates a selector forcing an anchor every `anchor_interval`
    /// snapshots (`0`/`1` = always anchor) and allowing deltas up to
    /// `max_order` in between.
    pub fn new(anchor_interval: usize, max_order: DeltaMode) -> Self {
        TemporalEncodingSelector {
            anchor_interval,
            max_order,
            snapshot_index: 0,
            states: Vec::new(),
        }
    }

    /// The configured anchor interval.
    pub fn anchor_interval(&self) -> usize {
        self.anchor_interval
    }

    /// Whether delta coding is enabled at all.
    pub fn delta_enabled(&self) -> bool {
        self.anchor_interval > 1 && self.max_order != DeltaMode::None
    }

    /// The highest delta order the encoder may choose.
    pub fn max_order(&self) -> DeltaMode {
        self.max_order
    }

    /// Starts the next snapshot: returns `true` when this snapshot must be
    /// an anchor (the first after construction or a reset, and every
    /// `anchor_interval`-th thereafter) and advances the snapshot counter.
    pub fn begin_snapshot(&mut self) -> bool {
        let force_anchor =
            !self.delta_enabled() || self.snapshot_index.is_multiple_of(self.anchor_interval);
        self.snapshot_index += 1;
        force_anchor
    }

    /// The retained compressor state for variable `name`, created empty on
    /// first use.
    pub fn state_for(&mut self, name: &str) -> &mut SzTemporalState {
        if let Some(idx) = self.states.iter().position(|(n, _)| n == name) {
            return &mut self.states[idx].1;
        }
        self.states.push((name.to_string(), SzTemporalState::new()));
        &mut self.states.last_mut().expect("just pushed").1
    }

    /// Drops all retained state and restarts the anchor cadence.  Must be
    /// called whenever the last *encoded* snapshot is not the last
    /// *committed* checkpoint — after a recovery, an aborted mid-write
    /// checkpoint, or a failed commit — because a delta against a
    /// checkpoint the store no longer agrees on is undecodable.
    pub fn reset(&mut self) {
        self.snapshot_index = 0;
        for (_, state) in &mut self.states {
            state.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_cadence_is_every_kth_snapshot() {
        let mut sel = TemporalEncodingSelector::new(3, DeltaMode::Order1);
        let forced: Vec<bool> = (0..7).map(|_| sel.begin_snapshot()).collect();
        assert_eq!(forced, vec![true, false, false, true, false, false, true]);
    }

    #[test]
    fn reset_restarts_the_cadence_and_clears_state() {
        let mut sel = TemporalEncodingSelector::new(4, DeltaMode::Order2);
        assert!(sel.begin_snapshot());
        assert!(!sel.begin_snapshot());
        sel.state_for("x");
        sel.reset();
        assert!(sel.begin_snapshot(), "first snapshot after reset is an anchor");
        assert!(!sel.state_for("x").has_prior());
    }

    #[test]
    fn zero_or_one_interval_always_anchors() {
        for interval in [0, 1] {
            let mut sel = TemporalEncodingSelector::new(interval, DeltaMode::Order1);
            assert!(!sel.delta_enabled());
            assert!((0..5).all(|_| sel.begin_snapshot()));
        }
    }

    #[test]
    fn none_max_order_disables_delta() {
        let mut sel = TemporalEncodingSelector::new(8, DeltaMode::None);
        assert!(!sel.delta_enabled());
        assert!((0..5).all(|_| sel.begin_snapshot()));
    }

    #[test]
    fn state_is_per_variable_and_order_stable() {
        let mut sel = TemporalEncodingSelector::new(4, DeltaMode::Order1);
        sel.state_for("x");
        sel.state_for("p");
        sel.state_for("x");
        assert_eq!(sel.states.len(), 2);
        assert_eq!(sel.states[0].0, "x");
        assert_eq!(sel.states[1].0, "p");
    }
}
