//! Dense-vector kernels used by the iterative solvers.
//!
//! The paper's dynamic variables are dense `f64` vectors (the approximate
//! solution `x`, the search direction `p`, the residual `r`, …).  This module
//! provides the handful of BLAS-1 kernels the solvers need, each in a
//! sequential and a rayon-parallel flavour.  The parallel variants switch on
//! automatically above [`PAR_THRESHOLD`] elements so that tiny test problems
//! do not pay thread-pool overhead.
//!
//! The parallel flavour is deterministic: the shim pool splits work into
//! chunks that depend only on the data length and combines partial
//! reductions in chunk order, so `dot`/norms are bit-identical at any
//! `LCR_NUM_THREADS` setting.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::ops::{Deref, DerefMut, Index, IndexMut};

/// Number of elements (for SpMV: non-zeros) above which the kernels use the
/// rayon pool.  Re-tuned for the threaded shim: dispatching a parallel call
/// costs a few microseconds of pool hand-off, while these memory-bound
/// kernels move ~1–2 elements/ns per core, so the break-even sits in the
/// tens of thousands of elements.
pub const PAR_THRESHOLD: usize = 32_768;

/// A dense, heap-allocated `f64` vector with the BLAS-1 operations needed by
/// iterative methods.
///
/// `Vector` dereferences to `[f64]`, so slice methods are available
/// directly.  It is `serde`-serialisable because checkpoint payloads are
/// built from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero-filled vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Vector {
            data: vec![value; n],
        }
    }

    /// Wraps an existing `Vec<f64>`.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Vector { data }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying `Vec`.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Sets every element to zero, preserving the allocation.
    pub fn set_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Copies the contents of `other` into `self`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, other: &Vector) {
        assert_eq!(self.len(), other.len(), "copy_from: length mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Euclidean (2-) norm.
    pub fn norm2(&self) -> f64 {
        dot(&self.data, &self.data).sqrt()
    }

    /// Infinity norm (maximum absolute value); 0 for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        if self.data.len() >= PAR_THRESHOLD {
            self.data
                .par_iter()
                .map(|v| v.abs())
                .reduce(|| 0.0, f64::max)
        } else {
            self.data.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()))
        }
    }

    /// 1-norm (sum of absolute values).
    pub fn norm1(&self) -> f64 {
        if self.data.len() >= PAR_THRESHOLD {
            self.data.par_iter().map(|v| v.abs()).sum()
        } else {
            self.data.iter().map(|v| v.abs()).sum()
        }
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        dot(&self.data, &other.data)
    }

    /// `self = self * alpha`.
    pub fn scale(&mut self, alpha: f64) {
        if self.data.len() >= PAR_THRESHOLD {
            self.data.par_iter_mut().for_each(|v| *v *= alpha);
        } else {
            self.data.iter_mut().for_each(|v| *v *= alpha);
        }
    }

    /// `self = self + alpha * x` (the classic axpy update).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, alpha: f64, x: &Vector) {
        assert_eq!(self.len(), x.len(), "axpy: length mismatch");
        if self.data.len() >= PAR_THRESHOLD {
            self.data
                .par_iter_mut()
                .zip(x.data.par_iter())
                .for_each(|(y, xi)| *y += alpha * xi);
        } else {
            self.data
                .iter_mut()
                .zip(x.data.iter())
                .for_each(|(y, xi)| *y += alpha * xi);
        }
    }

    /// `self = x + beta * self` (the "xpby" update used by CG's direction
    /// refresh `p = z + beta p`).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn xpby(&mut self, x: &Vector, beta: f64) {
        assert_eq!(self.len(), x.len(), "xpby: length mismatch");
        if self.data.len() >= PAR_THRESHOLD {
            self.data
                .par_iter_mut()
                .zip(x.data.par_iter())
                .for_each(|(p, xi)| *p = xi + beta * *p);
        } else {
            self.data
                .iter_mut()
                .zip(x.data.iter())
                .for_each(|(p, xi)| *p = xi + beta * *p);
        }
    }

    /// Element-wise maximum absolute difference to another vector.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn max_abs_diff(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "max_abs_diff: length mismatch");
        if self.data.len() >= PAR_THRESHOLD {
            self.data
                .par_iter()
                .zip(other.data.par_iter())
                .map(|(a, b)| (a - b).abs())
                .reduce(|| 0.0, f64::max)
        } else {
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0_f64, f64::max)
        }
    }

    /// Value range (max − min); 0 for the empty vector.  Used by the
    /// value-range-relative error bound of the compressors.
    pub fn value_range(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let (min, max) = if self.data.len() >= PAR_THRESHOLD {
            self.data
                .par_iter()
                .fold(
                    || (f64::INFINITY, f64::NEG_INFINITY),
                    |(mn, mx), &v| (mn.min(v), mx.max(v)),
                )
                .reduce(
                    || (f64::INFINITY, f64::NEG_INFINITY),
                    |(amn, amx), (bmn, bmx)| (amn.min(bmn), amx.max(bmx)),
                )
        } else {
            self.data
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(mn, mx), &v| {
                    (mn.min(v), mx.max(v))
                })
        };
        max - min
    }

    /// Fills the vector with uniformly distributed pseudo-random values in
    /// `[lo, hi)` from a simple deterministic linear congruential generator.
    ///
    /// The generator is deliberately self-contained (no `rand` dependency in
    /// the hot path) so initial guesses are reproducible across platforms.
    pub fn fill_random(&mut self, seed: u64, lo: f64, hi: f64) {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for v in self.data.iter_mut() {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64
                / (1u64 << 53) as f64;
            *v = lo + r * (hi - lo);
        }
    }
}

impl Deref for Vector {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.data
    }
}

impl DerefMut for Vector {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector::from_vec(v)
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector::from_vec(iter.into_iter().collect())
    }
}

/// Dot product of two slices, parallel above [`PAR_THRESHOLD`].
///
/// Each chunk runs the eight-lane [`simd`](crate::simd) dot kernel and the
/// per-chunk partials are summed in chunk order, so the result is
/// bit-identical at any thread count *and* bit-identical to the norms the
/// fused kernels in [`kernels`](crate::kernels) return, which use the same
/// chunking and the same lane kernel.
///
/// # Panics
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    crate::kernels::run_len(a.len(), |s, e| crate::simd::dot(&a[s..e], &b[s..e]))
        .into_iter()
        .sum()
}

/// `y = a*x + y` on raw slices.
///
/// # Panics
/// Panics if the lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    if x.len() >= PAR_THRESHOLD {
        y.par_iter_mut()
            .zip(x.par_iter())
            .for_each(|(yi, xi)| *yi += alpha * xi);
    } else {
        y.iter_mut()
            .zip(x.iter())
            .for_each(|(yi, xi)| *yi += alpha * xi);
    }
}

/// Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let z = Vector::zeros(5);
        assert_eq!(z.len(), 5);
        assert!(z.iter().all(|&v| v == 0.0));
        let f = Vector::filled(3, 2.5);
        assert_eq!(f.as_slice(), &[2.5, 2.5, 2.5]);
        assert!(!f.is_empty());
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn norms() {
        let v = Vector::from_vec(vec![3.0, -4.0]);
        assert!((v.norm2() - 5.0).abs() < 1e-14);
        assert!((v.norm1() - 7.0).abs() < 1e-14);
        assert!((v.norm_inf() - 4.0).abs() < 1e-14);
    }

    #[test]
    fn dot_and_axpy() {
        let a = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let b = Vector::from_vec(vec![4.0, 5.0, 6.0]);
        assert!((a.dot(&b) - 32.0).abs() < 1e-14);

        let mut y = b.clone();
        y.axpy(2.0, &a);
        assert_eq!(y.as_slice(), &[6.0, 9.0, 12.0]);
    }

    #[test]
    fn xpby_matches_manual() {
        // p = z + beta p
        let z = Vector::from_vec(vec![1.0, 1.0]);
        let mut p = Vector::from_vec(vec![2.0, 4.0]);
        p.xpby(&z, 0.5);
        assert_eq!(p.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn scale_and_zero() {
        let mut v = Vector::from_vec(vec![1.0, -2.0]);
        v.scale(-3.0);
        assert_eq!(v.as_slice(), &[-3.0, 6.0]);
        v.set_zero();
        assert_eq!(v.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn value_range_and_diff() {
        let v = Vector::from_vec(vec![-1.0, 0.0, 3.0]);
        assert!((v.value_range() - 4.0).abs() < 1e-14);
        let w = Vector::from_vec(vec![-1.5, 0.0, 3.25]);
        assert!((v.max_abs_diff(&w) - 0.5).abs() < 1e-14);
        assert_eq!(Vector::zeros(0).value_range(), 0.0);
    }

    #[test]
    fn parallel_paths_match_sequential() {
        let n = PAR_THRESHOLD + 17;
        let mut a = Vector::zeros(n);
        let mut b = Vector::zeros(n);
        a.fill_random(1, -1.0, 1.0);
        b.fill_random(2, -1.0, 1.0);

        let seq_dot: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        assert!((a.dot(&b) - seq_dot).abs() < 1e-9 * seq_dot.abs().max(1.0));

        let seq_inf = a.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        assert_eq!(a.norm_inf(), seq_inf);

        let mut y1 = b.clone();
        y1.axpy(0.7, &a);
        let mut y2 = b.clone();
        for i in 0..n {
            y2[i] += 0.7 * a[i];
        }
        assert!(y1.max_abs_diff(&y2) < 1e-12);
    }

    #[test]
    fn fill_random_is_deterministic_and_bounded() {
        let mut a = Vector::zeros(1000);
        let mut b = Vector::zeros(1000);
        a.fill_random(42, -2.0, 3.0);
        b.fill_random(42, -2.0, 3.0);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (-2.0..3.0).contains(&v)));
        let mut c = Vector::zeros(1000);
        c.fill_random(43, -2.0, 3.0);
        assert_ne!(a, c);
    }

    #[test]
    fn copy_from_and_conversions() {
        let a = Vector::from(vec![1.0, 2.0]);
        let mut b = Vector::zeros(2);
        b.copy_from(&a);
        assert_eq!(a, b);
        let v: Vector = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v.into_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        let _ = a.dot(&b);
    }

    #[test]
    fn slice_helpers() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0];
        assert!((dot(&a, &b) - 11.0).abs() < 1e-14);
        assert!((norm2(&a) - (5.0_f64).sqrt()).abs() < 1e-14);
        let mut y = b.clone();
        axpy(2.0, &a, &mut y);
        assert_eq!(y, vec![5.0, 8.0]);
    }
}
