//! Compressed sparse row matrix and its parallel kernels.

use crate::kernels;
use crate::simd::LANES;
use crate::vector::{Vector, PAR_THRESHOLD};
use crate::{Result, SparseError};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Minimum run of equal-width rows promoted to a SELL-style [`RowBlock::Slab`].
/// One slab group is [`LANES`] rows, so shorter runs could never fill a group.
const SELL_MIN_ROWS: usize = LANES;

/// One traversal segment of a plan chunk — the SELL-style cache blocking.
///
/// The plan splits each chunk's row range into maximal runs of rows that
/// all store the same number of entries ([`RowBlock::Slab`]) and the
/// irregular rows in between ([`RowBlock::Tail`]).  Slabs are traversed in
/// groups of [`LANES`] rows in lockstep — eight independent gather/FMA
/// chains with row extents computed by pure arithmetic (no `indptr` reads)
/// — while tails keep the seed's carried-start traversal.  Within each row
/// the entries are still visited in ascending storage order, so the per-row
/// sums are **bit-identical** to the scalar traversal's.
#[derive(Debug, Clone, PartialEq)]
pub enum RowBlock {
    /// Rows `rows.0..rows.1` all store exactly `width` entries; row `r`'s
    /// entries occupy `k + (r − rows.0)·width ..` in the value/index arrays.
    Slab {
        /// Half-open row range of the slab.
        rows: (usize, usize),
        /// Entries stored by every row of the slab.
        width: usize,
        /// Storage offset of the first row's first entry.
        k: usize,
    },
    /// Irregular rows `rows.0..rows.1`, traversed via `indptr` with each
    /// row's end carried forward as the next row's start.
    Tail {
        /// Half-open row range of the tail.
        rows: (usize, usize),
    },
}

impl RowBlock {
    /// The half-open row range the block covers.
    pub fn rows(&self) -> (usize, usize) {
        match *self {
            RowBlock::Slab { rows, .. } | RowBlock::Tail { rows } => rows,
        }
    }
}

/// Consumer of row sums produced by the blocked traversal.
///
/// The traversal hands each slab lockstep group's [`LANES`] sums to
/// [`RowSink::slab`] wholesale, letting fused reductions accumulate them
/// with lane-parallel arithmetic; irregular rows arrive one at a time via
/// [`RowSink::row`].  The default `slab` simply forwards to `row` in
/// ascending row order, so plain consumers only implement `row`.
pub(crate) trait RowSink {
    /// One row's sum.
    fn row(&mut self, i: usize, sum: f64);

    /// Sums for the [`LANES`] consecutive rows starting at `r`.
    #[inline]
    fn slab(&mut self, r: usize, sums: &[f64; LANES]) {
        for (l, &s) in sums.iter().enumerate() {
            self.row(r + l, s);
        }
    }
}

/// Adapts a plain `FnMut(row, sum)` closure to [`RowSink`].
pub(crate) struct FnSink<F: FnMut(usize, f64)>(pub F);

impl<F: FnMut(usize, f64)> RowSink for FnSink<F> {
    #[inline]
    fn row(&mut self, i: usize, sum: f64) {
        (self.0)(i, sum);
    }
}

/// Column-index storage width the blocked traversal gathers through —
/// either the CSR `usize` array or the plan's narrow `u32` copy.
trait ColIdx: Copy {
    /// The index as a `usize`.
    fn idx(self) -> usize;
}

impl ColIdx for usize {
    #[inline(always)]
    fn idx(self) -> usize {
        self
    }
}

impl ColIdx for u32 {
    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}

/// Validates one chunk's block decomposition under the `racecheck`
/// feature: the blocks' row ranges must be disjoint, in bounds and tile
/// the chunk's row range exactly, and every slab's storage extent must
/// stay within the matrix's stored non-zeros.  Reuses the rayon shim's
/// [`ClaimSet`](rayon::racecheck::ClaimSet), so violations panic with the
/// checker's standard "overlaps" / "out of bounds" reports.
#[cfg(feature = "racecheck")]
fn check_blocks((r0, r1): (usize, usize), blocks: &[RowBlock], nnz: usize) {
    let row_claims = rayon::racecheck::ClaimSet::new(r1);
    let extent_claims = rayon::racecheck::ClaimSet::new(nnz);
    let mut covered = 0usize;
    for b in blocks {
        let (s, e) = b.rows();
        assert!(
            s >= r0,
            "racecheck: block rows {s}..{e} start before chunk rows {r0}..{r1}"
        );
        row_claims.claim(s, e);
        covered += e - s;
        if let RowBlock::Slab { width, k, .. } = *b {
            extent_claims.claim(k, k + (e - s) * width);
        }
    }
    assert_eq!(
        covered,
        r1 - r0,
        "racecheck: blocks do not tile chunk rows {r0}..{r1}"
    );
}

/// Precomputed execution plan for SpMV-shaped traversals of one matrix.
///
/// Built once per matrix from the row-pointer structure only (lazily on
/// first use, eagerly at the [`CsrMatrix::from_raw`] / COO-conversion
/// finalize points) and reused by every [`CsrMatrix::spmv`] and fused
/// kernel call, replacing the per-call chunk-policy recomputation the seed
/// implementation performed.  The plan fixes three decisions:
///
/// * an **nnz-balanced row partition**: chunk boundaries are chosen so each
///   chunk carries roughly `nnz / n_chunks` non-zeros, keeping load
///   balanced even when row lengths vary;
/// * the **parallel gate**, decided once from `nnz` (work-proportional) and
///   shared by `spmv`, `residual_into` and every fused kernel — previously
///   `residual_into` gated its subtraction pass on `nrows` while `spmv`
///   gated on `nnz`;
/// * a **uniform-row fast path**: when every row stores exactly the same
///   number of entries (identity, diagonal and dense-block matrices), row
///   extents are computed as `i * w` with no `indptr` reads at all;
/// * a **SELL-style block decomposition** of every chunk ([`RowBlock`]):
///   maximal runs of equal-width rows become lockstep-traversable slabs,
///   irregular rows keep the carried-start traversal;
/// * a **narrow column-index copy**: when the column count fits in `u32`
///   (every matrix in this repository), the plan carries a `u32` copy of
///   the index array, cutting SpMV traffic from 16 to 12 bytes per
///   non-zero — these kernels are bandwidth-bound, so that is a direct
///   throughput win worth the one-time 4 bytes/nnz of derived state.
///
/// Because the partition depends only on the matrix structure — never on
/// the thread count — fused reductions that combine per-chunk partials in
/// chunk order stay bit-identical at any `LCR_NUM_THREADS`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmvPlan {
    chunks: Vec<(usize, usize)>,
    parallel: bool,
    uniform_row_nnz: Option<usize>,
    blocks: Vec<Vec<RowBlock>>,
    cols32: Option<Vec<u32>>,
}

impl SpmvPlan {
    /// Builds the plan from the CSR structure arrays.
    fn build(indptr: &[usize], indices: &[usize], ncols: usize) -> SpmvPlan {
        let nrows = indptr.len() - 1;
        let nnz = *indptr.last().unwrap();
        let parallel = nnz >= PAR_THRESHOLD;
        // Work-proportional chunk count, additionally capped by the row
        // count: rows are the unit of distribution, so a short, dense
        // matrix must not dispatch (mostly empty) excess pool tasks.
        let n_chunks = if parallel {
            (nnz / rayon::DEFAULT_MIN_CHUNK)
                .clamp(1, rayon::MAX_CHUNKS)
                .min(nrows.max(1))
        } else {
            1
        };
        let mut chunks = Vec::with_capacity(n_chunks);
        let mut row = 0usize;
        for i in 1..=n_chunks {
            let end = if i == n_chunks {
                nrows
            } else {
                // First row boundary whose cumulative nnz reaches this
                // chunk's share of the work.
                let target = i * nnz / n_chunks;
                indptr.partition_point(|&p| p < target).clamp(row, nrows)
            };
            chunks.push((row, end));
            row = end;
        }
        let uniform_row_nnz = (nrows > 0)
            .then(|| indptr[1] - indptr[0])
            .filter(|&w| indptr.windows(2).all(|p| p[1] - p[0] == w));
        let blocks = chunks
            .iter()
            .map(|&(r0, r1)| Self::build_blocks(indptr, r0, r1))
            .collect();
        let cols32 = (ncols <= u32::MAX as usize)
            .then(|| indices.iter().map(|&c| c as u32).collect());
        SpmvPlan {
            chunks,
            parallel,
            uniform_row_nnz,
            blocks,
            cols32,
        }
    }

    /// Splits chunk rows `r0..r1` into maximal equal-width slabs (runs of at
    /// least [`SELL_MIN_ROWS`] rows) and the irregular tails between them.
    fn build_blocks(indptr: &[usize], r0: usize, r1: usize) -> Vec<RowBlock> {
        let mut blocks = Vec::new();
        let mut tail_start = r0;
        let mut i = r0;
        while i < r1 {
            let w = indptr[i + 1] - indptr[i];
            let mut j = i + 1;
            while j < r1 && indptr[j + 1] - indptr[j] == w {
                j += 1;
            }
            if j - i >= SELL_MIN_ROWS {
                if tail_start < i {
                    blocks.push(RowBlock::Tail {
                        rows: (tail_start, i),
                    });
                }
                blocks.push(RowBlock::Slab {
                    rows: (i, j),
                    width: w,
                    k: indptr[i],
                });
                tail_start = j;
            }
            i = j;
        }
        if tail_start < r1 {
            blocks.push(RowBlock::Tail {
                rows: (tail_start, r1),
            });
        }
        blocks
    }

    /// The nnz-balanced row ranges; fused reductions combine their partials
    /// in exactly this order.
    pub fn chunks(&self) -> &[(usize, usize)] {
        &self.chunks
    }

    /// Whether traversals of this matrix should recruit the thread pool
    /// (`nnz >= PAR_THRESHOLD`) — the single gating decision shared by
    /// `spmv`, `residual_into` and the fused kernels.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// `Some(w)` when every row stores exactly `w` entries.
    pub fn uniform_row_nnz(&self) -> Option<usize> {
        self.uniform_row_nnz
    }

    /// Number of row chunks.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The SELL-style block decomposition of chunk `ci`.
    pub fn blocks(&self, ci: usize) -> &[RowBlock] {
        &self.blocks[ci]
    }

    /// The narrow (`u32`) copy of the column-index array, when the column
    /// count fits.
    pub(crate) fn cols32(&self) -> Option<&[u32]> {
        self.cols32.as_deref()
    }

    /// Builds a plan with explicit chunk ranges — racecheck-test support
    /// only, so deliberately broken partitions (overlapping or
    /// out-of-bounds chunks) can be driven through the real kernels to
    /// prove the checker catches them.  Each chunk becomes a single
    /// [`RowBlock::Tail`], so the traversal exercises the general path.
    #[cfg(feature = "racecheck")]
    pub fn for_racecheck(chunks: Vec<(usize, usize)>, uniform_row_nnz: Option<usize>) -> SpmvPlan {
        let blocks = chunks
            .iter()
            .map(|&rows| vec![RowBlock::Tail { rows }])
            .collect();
        SpmvPlan {
            chunks,
            parallel: true,
            uniform_row_nnz,
            blocks,
            cols32: None,
        }
    }

    /// Builds a plan with explicit chunk ranges **and** explicit per-chunk
    /// block decompositions — racecheck-test support only, so deliberately
    /// broken slab layouts (overlapping rows, mis-tiled chunks, slab
    /// extents running past the value array) can be driven through the
    /// real traversal to prove the block validator catches them.
    #[cfg(feature = "racecheck")]
    pub fn for_racecheck_with_blocks(
        chunks: Vec<(usize, usize)>,
        blocks: Vec<Vec<RowBlock>>,
    ) -> SpmvPlan {
        assert_eq!(chunks.len(), blocks.len(), "one block list per chunk");
        SpmvPlan {
            chunks,
            parallel: true,
            uniform_row_nnz: None,
            blocks,
            cols32: None,
        }
    }
}

/// Interior cell holding the lazily built [`SpmvPlan`].
///
/// The plan is derived state, rebuildable from `indptr` at any time, so
/// equality and serialisation ignore it entirely.
#[derive(Debug, Clone, Default)]
pub(crate) struct PlanCell(OnceLock<SpmvPlan>);

impl PartialEq for PlanCell {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Serialize for PlanCell {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("null");
    }
}

impl Deserialize for PlanCell {}

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// This is the computational format: all solver kernels (`SpMV`, triangular
/// sweeps, preconditioner applications) operate on it.  Row pointers,
/// column indices and values are stored in three flat arrays, matching the
/// layout PETSc's `MATAIJ` uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
    plan: PlanCell,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw arrays after validating the structure.
    ///
    /// # Errors
    /// Returns [`SparseError::InvalidStructure`] if the row pointer array has
    /// the wrong length, is not monotone, or points past the data arrays, and
    /// [`SparseError::IndexOutOfBounds`] if any column index is out of range.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if indptr.len() != nrows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "indptr length {} != nrows + 1 = {}",
                indptr.len(),
                nrows + 1
            )));
        }
        if indices.len() != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "indices length {} != values length {}",
                indices.len(),
                values.len()
            )));
        }
        if indptr[0] != 0 || *indptr.last().unwrap() != indices.len() {
            return Err(SparseError::InvalidStructure(
                "indptr must start at 0 and end at nnz".into(),
            ));
        }
        for w in indptr.windows(2) {
            if w[1] < w[0] {
                return Err(SparseError::InvalidStructure(
                    "indptr must be non-decreasing".into(),
                ));
            }
        }
        for (row, w) in indptr.windows(2).enumerate() {
            for &c in &indices[w[0]..w[1]] {
                if c >= ncols {
                    return Err(SparseError::IndexOutOfBounds {
                        row,
                        col: c,
                        nrows,
                        ncols,
                    });
                }
            }
        }
        let m = CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            values,
            plan: PlanCell::default(),
        };
        // `from_raw` is a finalize point: build the SpMV plan eagerly so
        // the first solver iteration never pays for it.
        m.plan();
        Ok(m)
    }

    /// Builds a CSR matrix from raw arrays without validation.
    ///
    /// Used by the trusted converters inside this crate (COO → CSR, the
    /// generators).  The arrays must satisfy the CSR invariants.
    pub fn from_raw_unchecked(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), nrows + 1);
        debug_assert_eq!(indices.len(), values.len());
        CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            values,
            plan: PlanCell::default(),
        }
    }

    /// Builds an `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
            plan: PlanCell::default(),
        }
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        CsrMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: diag.to_vec(),
            plan: PlanCell::default(),
        }
    }

    /// Builds a dense matrix given row-major data (test/helper utility;
    /// zero entries are dropped).
    pub fn from_dense(nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols, "from_dense: bad data length");
        let mut indptr = Vec::with_capacity(nrows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for i in 0..nrows {
            for j in 0..ncols {
                let v = data[i * ncols + j];
                if v != 0.0 {
                    indices.push(j);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            values,
            plan: PlanCell::default(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structural) non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (`nrows + 1` entries).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column index array.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable value array (structure is immutable; values may be edited,
    /// which ILU-type factorisations rely on).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Column indices of row `i`.
    pub fn row_indices(&self, i: usize) -> &[usize] {
        &self.indices[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Values of row `i`.
    pub fn row_values(&self, i: usize) -> &[f64] {
        &self.values[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Returns entry `(i, j)`, or `0.0` if it is not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (start, end) = (self.indptr[i], self.indptr[i + 1]);
        match self.indices[start..end].binary_search(&j) {
            Ok(pos) => self.values[start + pos],
            Err(_) => 0.0,
        }
    }

    /// Extracts the diagonal as a vector (missing entries are 0).
    pub fn diagonal(&self) -> Vector {
        let n = self.nrows.min(self.ncols);
        let mut d = Vector::zeros(n);
        for i in 0..n {
            d[i] = self.get(i, i);
        }
        d
    }

    /// Checks that every diagonal entry exists and is non-zero.
    ///
    /// A single linear pass over `indptr`/`indices`/`values` — O(nnz) —
    /// replacing the per-row binary-search `get(i, i)` lookup
    /// (O(n · log row_nnz)) and working on unsorted rows too.
    ///
    /// # Errors
    /// Returns [`SparseError::ZeroDiagonal`] naming the first offending row.
    pub fn require_nonzero_diagonal(&self) -> Result<()> {
        let n = self.nrows.min(self.ncols);
        let mut start = self.indptr[0];
        for i in 0..n {
            let end = self.indptr[i + 1];
            let found = self.indices[start..end]
                .iter()
                .position(|&c| c == i)
                .is_some_and(|p| self.values[start + p] != 0.0);
            if !found {
                return Err(SparseError::ZeroDiagonal(i));
            }
            start = end;
        }
        Ok(())
    }

    /// The matrix's precomputed [`SpmvPlan`], built on first use (and
    /// eagerly at the `from_raw` / COO-conversion finalize points).
    pub fn plan(&self) -> &SpmvPlan {
        self.plan
            .0
            .get_or_init(|| SpmvPlan::build(&self.indptr, &self.indices, self.ncols))
    }

    /// Replaces the precomputed plan — racecheck-test support only (see
    /// [`SpmvPlan::for_racecheck`]).  Never part of the production API:
    /// plans are always derived from `indptr`.
    #[cfg(feature = "racecheck")]
    pub fn override_plan_for_racecheck(&mut self, plan: SpmvPlan) {
        self.plan = PlanCell(std::sync::OnceLock::from(plan));
    }

    /// Computes the row sums `(A x)_i` for the rows of plan chunk `ci`,
    /// handing each to `emit(i, sum)` in row order — the traversal core
    /// shared by `spmv` and the fused kernels.
    ///
    /// The chunk is traversed block by block ([`RowBlock`]): slabs in
    /// lockstep groups of [`LANES`] rows with arithmetic row extents,
    /// tails with the carried-start `indptr` walk.  When the plan carries
    /// a `u32` index copy the whole traversal gathers through it.
    ///
    /// Callers must have checked `x.len() == self.ncols()`: the gather
    /// through `x` relies on the CSR invariant `indices[k] < ncols` and
    /// skips per-element bounds checks.
    ///
    /// Under the `racecheck` feature, the chunk's block list is first
    /// validated against the plan's chunk range and the value array: the
    /// blocks must tile the chunk's rows exactly, and slab extents must
    /// stay within the stored non-zeros.
    #[inline]
    pub(crate) fn apply_chunk<F: FnMut(usize, f64)>(
        &self,
        plan: &SpmvPlan,
        ci: usize,
        x: &[f64],
        emit: F,
    ) {
        self.apply_chunk_sink(plan, ci, x, &mut FnSink(emit));
    }

    /// Sink-based variant of [`Self::apply_chunk`]: slab lockstep groups
    /// hand all [`LANES`] row sums to [`RowSink::slab`] in one call, so
    /// fused reductions (SpMV·dot, residual‖·‖²) can accumulate them with
    /// lane-parallel arithmetic instead of a serial per-row chain.
    pub(crate) fn apply_chunk_sink<S: RowSink>(
        &self,
        plan: &SpmvPlan,
        ci: usize,
        x: &[f64],
        sink: &mut S,
    ) {
        debug_assert_eq!(x.len(), self.ncols);
        let blocks = plan.blocks(ci);
        #[cfg(feature = "racecheck")]
        check_blocks(plan.chunks()[ci], blocks, self.values.len());
        match plan.cols32() {
            Some(c32) => self.apply_blocks(blocks, c32, x, sink),
            None => self.apply_blocks(blocks, &self.indices, x, sink),
        }
    }

    /// Block traversal over either index width — see [`Self::apply_chunk`].
    #[inline]
    fn apply_blocks<I: ColIdx, S: RowSink>(
        &self,
        blocks: &[RowBlock],
        cols: &[I],
        x: &[f64],
        emit: &mut S,
    ) {
        let gather = |vals: &[f64], cs: &[I]| -> f64 {
            let mut sum = 0.0;
            for (v, c) in vals.iter().zip(cs) {
                let c = c.idx();
                debug_assert!(c < x.len(), "CSR column {c} out of bounds for x of len {}", x.len());
                // SAFETY: `c < ncols` (CSR invariant, validated by
                // `from_raw` and documented for `from_raw_unchecked`) and
                // `x.len() == ncols` (caller contract above).
                sum += v * unsafe { x.get_unchecked(c) };
            }
            sum
        };
        for b in blocks {
            match *b {
                RowBlock::Slab { rows: (s, e), width: w, k } => {
                    let mut r = s;
                    let mut base = k;
                    let span = LANES * w;
                    while r + LANES <= e {
                        // Checked subslices: a slab whose extent runs past
                        // the stored non-zeros panics here instead of
                        // reading out of bounds.
                        let vals = &self.values[base..base + span];
                        let cs = &cols[base..base + span];
                        let mut sums = [0.0f64; LANES];
                        // Lane-major inner loop: eight independent
                        // gather+multiply chains in flight per step.  Each
                        // row still accumulates its entries in ascending
                        // storage order, so per-row sums are bit-identical
                        // to the carried-start traversal's.
                        for j in 0..w {
                            for (l, acc) in sums.iter_mut().enumerate() {
                                // SAFETY: `l < LANES` and `j < w`, so
                                // `l·w + j < LANES·w = vals.len() = cs.len()`.
                                let (v, c) = unsafe {
                                    (
                                        *vals.get_unchecked(l * w + j),
                                        cs.get_unchecked(l * w + j).idx(),
                                    )
                                };
                                debug_assert!(c < x.len(), "CSR column {c} out of bounds");
                                // SAFETY: CSR invariant `c < ncols` and the
                                // caller contract `x.len() == ncols`.
                                *acc += v * unsafe { x.get_unchecked(c) };
                            }
                        }
                        emit.slab(r, &sums);
                        r += LANES;
                        base += span;
                    }
                    for i in r..e {
                        emit.row(i, gather(&self.values[base..base + w], &cols[base..base + w]));
                        base += w;
                    }
                }
                RowBlock::Tail { rows: (s, e) } => {
                    let mut k = self.indptr[s];
                    for i in s..e {
                        let end = self.indptr[i + 1];
                        emit.row(i, gather(&self.values[k..end], &cols[k..end]));
                        k = end;
                    }
                }
            }
        }
    }

    /// Sparse matrix–vector product `y = A x`, parallelised over the
    /// precomputed [`SpmvPlan`] row chunks for matrices carrying at least
    /// [`PAR_THRESHOLD`] non-zeros.  Gating on `nnz` rather than `nrows`
    /// makes the switch work-proportional: a short, dense matrix
    /// parallelises, a tall, nearly-empty one does not.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv: y length mismatch");
        kernels::spmv_into(self, x, y);
    }

    /// Convenience `A x` returning a fresh [`Vector`].
    pub fn mul_vec(&self, x: &Vector) -> Vector {
        let mut y = Vector::zeros(self.nrows);
        self.spmv(x.as_slice(), y.as_mut_slice());
        y
    }

    /// Computes the residual `r = b − A x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn residual(&self, x: &Vector, b: &Vector) -> Vector {
        let mut r = Vector::zeros(self.nrows);
        self.residual_into(x.as_slice(), b.as_slice(), r.as_mut_slice());
        r
    }

    /// Computes the residual `r = b − A x` into a preallocated buffer —
    /// the allocation-free variant the solver inner loops and restart
    /// paths use.
    ///
    /// The subtraction is fused into the matrix traversal (one pass instead
    /// of an SpMV followed by a separate subtraction sweep), and the
    /// parallel gate is the [`SpmvPlan`]'s single nnz-based decision —
    /// previously this method gated its second pass on `nrows` while `spmv`
    /// gated on `nnz`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn residual_into(&self, x: &[f64], b: &[f64], r: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "residual: x length mismatch");
        assert_eq!(b.len(), self.nrows, "residual: b length mismatch");
        assert_eq!(r.len(), self.nrows, "residual: r length mismatch");
        kernels::residual_into(self, x, b, r);
    }

    /// Transposes the matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut next = counts.clone();
        for row in 0..self.nrows {
            for k in self.indptr[row]..self.indptr[row + 1] {
                let col = self.indices[k];
                let dst = next[col];
                indices[dst] = row;
                values[dst] = self.values[k];
                next[col] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            indptr: counts,
            indices,
            values,
            plan: PlanCell::default(),
        }
    }

    /// Whether the matrix is numerically symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.indptr != self.indptr {
            // Structures can differ while values still match; fall back to
            // an entry-wise comparison.
            for i in 0..self.nrows {
                for (pos, &j) in self.row_indices(i).iter().enumerate() {
                    let a_ij = self.row_values(i)[pos];
                    if (a_ij - self.get(j, i)).abs() > tol {
                        return false;
                    }
                }
            }
            return true;
        }
        self.indices == t.indices
            && self
                .values
                .iter()
                .zip(t.values.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Infinity norm of the matrix (maximum absolute row sum), chunked over
    /// the precomputed [`SpmvPlan`] row partition.
    pub fn norm_inf(&self) -> f64 {
        let partials = kernels::run_plan(self.plan(), |_ci, r0, r1| {
            let mut m = 0.0f64;
            let mut k = self.indptr[r0];
            for i in r0..r1 {
                let end = self.indptr[i + 1];
                let s: f64 = self.values[k..end].iter().map(|v| v.abs()).sum();
                m = m.max(s);
                k = end;
            }
            m
        });
        partials.into_iter().fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Extracts the strictly lower-triangular, diagonal, and strictly
    /// upper-triangular parts `(L, D, U)` such that `A = L + D + U`.
    pub fn split_ldu(&self) -> (CsrMatrix, Vector, CsrMatrix) {
        let n = self.nrows;
        let mut l_indptr = vec![0usize; n + 1];
        let mut u_indptr = vec![0usize; n + 1];
        let mut l_indices = Vec::new();
        let mut l_values = Vec::new();
        let mut u_indices = Vec::new();
        let mut u_values = Vec::new();
        let mut d = Vector::zeros(n);
        for i in 0..n {
            for k in self.indptr[i]..self.indptr[i + 1] {
                let j = self.indices[k];
                let v = self.values[k];
                match j.cmp(&i) {
                    std::cmp::Ordering::Less => {
                        l_indices.push(j);
                        l_values.push(v);
                    }
                    std::cmp::Ordering::Equal => d[i] = v,
                    std::cmp::Ordering::Greater => {
                        u_indices.push(j);
                        u_values.push(v);
                    }
                }
            }
            l_indptr[i + 1] = l_indices.len();
            u_indptr[i + 1] = u_indices.len();
        }
        (
            CsrMatrix::from_raw_unchecked(n, self.ncols, l_indptr, l_indices, l_values),
            d,
            CsrMatrix::from_raw_unchecked(n, self.ncols, u_indptr, u_indices, u_values),
        )
    }

    /// Extracts the square sub-block with rows and columns in
    /// `[start, start+len)`.  Entries outside the block are dropped.  Used by
    /// the block-Jacobi preconditioner.
    pub fn diagonal_block(&self, start: usize, len: usize) -> CsrMatrix {
        let end = (start + len).min(self.nrows);
        let mut indptr = Vec::with_capacity(end - start + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0usize);
        for i in start..end {
            for k in self.indptr[i]..self.indptr[i + 1] {
                let j = self.indices[k];
                if j >= start && j < end {
                    indices.push(j - start);
                    values.push(self.values[k]);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_unchecked(end - start, end - start, indptr, indices, values)
    }

    /// Number of bytes needed to store the matrix values + structure
    /// (8 bytes per value, 8 per column index, 8 per row pointer).  Used by
    /// the checkpoint-size accounting of static variables.
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * 8 + self.indices.len() * 8 + self.indptr.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [ 4 -1  0 ]
        // [-1  4 -1 ]
        // [ 0 -1  4 ]
        CsrMatrix::from_dense(3, 3, &[4.0, -1.0, 0.0, -1.0, 4.0, -1.0, 0.0, -1.0, 4.0])
    }

    #[test]
    fn identity_and_diag() {
        let i3 = CsrMatrix::identity(3);
        assert_eq!(i3.nnz(), 3);
        let x = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(i3.mul_vec(&x), x);

        let d = CsrMatrix::from_diagonal(&[2.0, 3.0]);
        assert_eq!(d.get(0, 0), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
        assert_eq!(d.diagonal().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let y = a.mul_vec(&x);
        assert_eq!(y.as_slice(), &[2.0, 4.0, 10.0]);
    }

    #[test]
    fn residual_is_b_minus_ax() {
        let a = small();
        let x = Vector::from_vec(vec![1.0, 1.0, 1.0]);
        let b = Vector::from_vec(vec![3.0, 2.0, 3.0]);
        let r = a.residual(&x, &b);
        assert_eq!(r.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = CsrMatrix::from_dense(2, 3, &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(1, 1), 3.0);
        let tt = t.transpose();
        assert_eq!(tt, a);
    }

    #[test]
    fn symmetry_check() {
        assert!(small().is_symmetric(1e-14));
        let ns = CsrMatrix::from_dense(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert!(!ns.is_symmetric(1e-14));
        let rect = CsrMatrix::from_dense(1, 2, &[1.0, 2.0]);
        assert!(!rect.is_symmetric(1e-14));
    }

    #[test]
    fn norms() {
        let a = small();
        assert!((a.norm_inf() - 6.0).abs() < 1e-14);
        let expected_fro = (3.0f64 * 16.0 + 4.0 * 1.0).sqrt();
        assert!((a.norm_fro() - expected_fro).abs() < 1e-12);
    }

    #[test]
    fn split_ldu_reassembles() {
        let a = small();
        let (l, d, u) = a.split_ldu();
        assert_eq!(d.as_slice(), &[4.0, 4.0, 4.0]);
        assert_eq!(l.get(1, 0), -1.0);
        assert_eq!(u.get(1, 2), -1.0);
        assert_eq!(l.get(0, 1), 0.0);
        // Reassemble and compare.
        for i in 0..3 {
            for j in 0..3 {
                let total = l.get(i, j) + u.get(i, j) + if i == j { d[i] } else { 0.0 };
                assert!((total - a.get(i, j)).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn diagonal_block_extraction() {
        let a = small();
        let b = a.diagonal_block(1, 2);
        assert_eq!(b.nrows(), 2);
        assert_eq!(b.get(0, 0), 4.0);
        assert_eq!(b.get(0, 1), -1.0);
        assert_eq!(b.get(1, 0), -1.0);
        // Block clipped at the matrix edge.
        let c = a.diagonal_block(2, 5);
        assert_eq!(c.nrows(), 1);
        assert_eq!(c.get(0, 0), 4.0);
    }

    #[test]
    fn from_raw_validation() {
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
        // Wrong indptr length.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 1.0]).is_err());
        // Column out of bounds.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 1.0]).is_err());
        // Non-monotone indptr.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        // indices/values length mismatch.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0]).is_err());
    }

    #[test]
    fn nonzero_diagonal_requirement() {
        assert!(small().require_nonzero_diagonal().is_ok());
        let bad = CsrMatrix::from_dense(2, 2, &[1.0, 1.0, 1.0, 0.0]);
        assert_eq!(
            bad.require_nonzero_diagonal(),
            Err(SparseError::ZeroDiagonal(1))
        );
    }

    #[test]
    fn storage_bytes_accounting() {
        let a = small();
        assert_eq!(a.storage_bytes(), a.nnz() * 16 + (a.nrows() + 1) * 8);
    }

    #[test]
    fn short_dense_spmv_parallelises_and_matches() {
        // Few rows, many non-zeros: passes the nnz gate and must still
        // split into row chunks (work-aware min chunk length).
        let (rows, cols) = (96usize, 600usize);
        let data: Vec<f64> = (0..rows * cols)
            .map(|k| ((k % 13) as f64) - 5.5)
            .collect();
        assert!(data.iter().all(|&v| v != 0.0));
        let a = CsrMatrix::from_dense(rows, cols, &data);
        assert!(a.nnz() >= PAR_THRESHOLD);
        let mut x = Vector::zeros(cols);
        x.fill_random(11, -1.0, 1.0);
        let y = a.mul_vec(&x);
        for i in (0..rows).step_by(7) {
            let expect: f64 = (0..cols).map(|j| data[i * cols + j] * x[j]).sum();
            assert!((y[i] - expect).abs() < 1e-9 * expect.abs().max(1.0));
        }
    }

    #[test]
    fn plan_partition_covers_all_rows_in_order() {
        for a in [
            small(),
            CsrMatrix::identity(10),
            CsrMatrix::from_dense(96, 600, &vec![1.0; 96 * 600]),
        ] {
            let plan = a.plan();
            let chunks = plan.chunks();
            assert_eq!(chunks.first().unwrap().0, 0);
            assert_eq!(chunks.last().unwrap().1, a.nrows());
            for w in chunks.windows(2) {
                assert_eq!(w[0].1, w[1].0, "chunks must tile the row range");
            }
            assert_eq!(plan.n_chunks(), chunks.len());
            assert_eq!(plan.is_parallel(), a.nnz() >= PAR_THRESHOLD);
        }
    }

    #[test]
    fn plan_chunks_are_nnz_balanced() {
        // A short, dense matrix above the parallel threshold must split
        // into several chunks of roughly equal non-zero counts.
        let (rows, cols) = (96usize, 600usize);
        let a = CsrMatrix::from_dense(rows, cols, &vec![1.0; rows * cols]);
        assert!(a.nnz() >= PAR_THRESHOLD);
        let plan = a.plan();
        assert!(plan.n_chunks() > 1, "dense matrix must split");
        let per_chunk_target = a.nnz() / plan.n_chunks();
        for &(r0, r1) in plan.chunks() {
            let nnz = a.indptr()[r1] - a.indptr()[r0];
            // Balanced to within one row's worth of non-zeros.
            assert!(
                nnz <= per_chunk_target + cols,
                "chunk rows {r0}..{r1} carries {nnz} nnz vs target {per_chunk_target}"
            );
        }
    }

    #[test]
    fn plan_chunk_count_is_capped_by_rows() {
        // Fewer rows than the work-based chunk count would suggest: every
        // chunk must still carry at least one row (no empty pool tasks).
        let (rows, cols) = (4usize, 12_000usize);
        let a = CsrMatrix::from_dense(rows, cols, &vec![1.0; rows * cols]);
        assert!(a.nnz() >= PAR_THRESHOLD);
        let plan = a.plan();
        assert!(plan.n_chunks() <= rows);
        assert!(plan.chunks().iter().all(|&(r0, r1)| r1 > r0));
    }

    #[test]
    fn plan_uniform_row_detection() {
        assert_eq!(CsrMatrix::identity(8).plan().uniform_row_nnz(), Some(1));
        assert_eq!(
            CsrMatrix::from_diagonal(&[1.0, 2.0]).plan().uniform_row_nnz(),
            Some(1)
        );
        let dense = CsrMatrix::from_dense(4, 3, &[1.0; 12]);
        assert_eq!(dense.plan().uniform_row_nnz(), Some(3));
        // The Poisson-like band matrix has shorter boundary rows.
        assert_eq!(small().plan().uniform_row_nnz(), None);
    }

    #[test]
    fn uniform_fast_path_spmv_matches_general() {
        // Identity and dense matrices take the uniform-row fast path; their
        // products must match the entry-wise reference exactly.
        let n = 50;
        let d: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let a = CsrMatrix::from_diagonal(&d);
        assert!(a.plan().uniform_row_nnz().is_some());
        let mut x = Vector::zeros(n);
        x.fill_random(5, -1.0, 1.0);
        let y = a.mul_vec(&x);
        for i in 0..n {
            assert_eq!(y[i], d[i] * x[i]);
        }
    }

    #[test]
    fn large_spmv_parallel_matches_serial() {
        // Build a banded matrix bigger than the parallel threshold.
        let n = PAR_THRESHOLD + 100;
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0usize);
        for i in 0..n {
            if i > 0 {
                indices.push(i - 1);
                values.push(1.0);
            }
            indices.push(i);
            values.push(-2.0);
            if i + 1 < n {
                indices.push(i + 1);
                values.push(1.0);
            }
            indptr.push(indices.len());
        }
        let a = CsrMatrix::from_raw(n, n, indptr, indices, values).unwrap();
        let mut x = Vector::zeros(n);
        x.fill_random(7, -1.0, 1.0);
        let y = a.mul_vec(&x);
        // Serial reference.
        for i in (0..n).step_by(997) {
            let mut expect = -2.0 * x[i];
            if i > 0 {
                expect += x[i - 1];
            }
            if i + 1 < n {
                expect += x[i + 1];
            }
            assert!((y[i] - expect).abs() < 1e-12);
        }
    }
}
