//! # lcr-sparse
//!
//! Sparse linear-algebra substrate for the lossy-checkpointing reproduction of
//! *"Improving Performance of Iterative Methods by Lossy Checkpointing"*
//! (Tao et al., HPDC 2018).
//!
//! The crate provides everything the iterative solvers in [`lcr-solvers`]
//! need to operate on the paper's workloads without any external numerical
//! library:
//!
//! * [`CsrMatrix`] — compressed sparse row storage with rayon-parallel
//!   matrix–vector products, transposition, diagonal extraction and
//!   structural queries.
//! * [`CooMatrix`] — triplet builder used by the generators and the
//!   Matrix Market reader.
//! * [`poisson`] — the 3-D (and 2-D/1-D) Poisson stencil matrices used in
//!   the paper's evaluation (Equation 15 of the paper: a 7-point stencil
//!   with `-6` on the diagonal).
//! * [`kkt`] — a synthetic symmetric-indefinite KKT (saddle-point) system
//!   generator standing in for the SuiteSparse `KKT240` matrix used in
//!   Figure 3 of the paper.
//! * [`matrixmarket`] — Matrix Market (`.mtx`) reader/writer so real
//!   SuiteSparse matrices can be dropped in when available.
//! * [`vector`] — dense-vector kernels (axpy, dot, norms) with sequential
//!   and rayon-parallel variants.
//! * [`simd`] — the portable eight-lane vector layer underneath every hot
//!   reduction: chunk-ordered lane accumulators plus a fixed pairwise
//!   horizontal-sum tree, bit-identical to its scalar mirror at any
//!   thread count.
//! * [`kernels`] — fused solver kernels (`spmv_dot`, `axpy2_norm2`,
//!   `residual_norm2`, …) that cut the memory passes of the Krylov inner
//!   loops roughly in half while staying bit-identical at any thread
//!   count, driven by the precomputed per-matrix [`SpmvPlan`].
//! * [`partition`] — block-row partitioning helpers mirroring how an MPI
//!   code would decompose the global system over ranks; used by the
//!   cluster/PFS model in `lcr-ckpt` to compute per-rank checkpoint sizes.
//!
//! All floating point data is `f64`, matching the paper (78.8 GB of
//! double-precision data for the 1e10-element vector at 2,048 ranks).

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod coo;
pub mod csr;
pub mod error;
pub mod kernels;
pub mod kkt;
pub mod matrixmarket;
pub mod partition;
pub mod poisson;
pub mod shard;
pub mod simd;
pub mod vector;

pub use coo::CooMatrix;
pub use csr::{CsrMatrix, RowBlock, SpmvPlan};
pub use error::SparseError;
pub use partition::{BlockRowPartition, RankRange};
pub use shard::{
    CommAction, CommError, CommInterposer, HaloPlan, ShardComm, ShardCoordinator, ShardLayout,
    ShardedCsr, REDUCE_BLOCK,
};
pub use vector::{Vector, PAR_THRESHOLD};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, SparseError>;
