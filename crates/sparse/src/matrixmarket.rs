//! Matrix Market (`.mtx`) reader and writer.
//!
//! The paper's Figure 3 uses the SuiteSparse matrix `KKT240`.  The synthetic
//! generator in [`crate::kkt`] is the offline stand-in, but this module lets
//! a user drop in the real file (or any other SuiteSparse matrix) when it is
//! available, using the standard coordinate Matrix Market format.

use crate::{CooMatrix, CsrMatrix, Result, SparseError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Symmetry declared in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// `general`: all entries stored explicitly.
    General,
    /// `symmetric`: only the lower triangle stored; mirrored on read.
    Symmetric,
    /// `skew-symmetric`: lower triangle stored, mirrored with negation.
    SkewSymmetric,
}

/// Parses a Matrix Market stream in `coordinate real/integer/pattern` format.
///
/// # Errors
/// Returns a [`SparseError::Parse`] for malformed headers or entries and
/// [`SparseError::Io`] for read failures.
pub fn parse_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty file".into()))?
        .map_err(SparseError::from)?;
    let header_lc = header.to_lowercase();
    if !header_lc.starts_with("%%matrixmarket") {
        return Err(SparseError::Parse(format!(
            "missing %%MatrixMarket banner, found: {header}"
        )));
    }
    if !header_lc.contains("coordinate") {
        return Err(SparseError::Parse(
            "only coordinate-format Matrix Market files are supported".into(),
        ));
    }
    let pattern = header_lc.contains("pattern");
    let symmetry = if header_lc.contains("skew-symmetric") {
        MmSymmetry::SkewSymmetric
    } else if header_lc.contains("symmetric") {
        MmSymmetry::Symmetric
    } else {
        MmSymmetry::General
    };

    // Skip comments, find the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(SparseError::from)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(trimmed.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| SparseError::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|_| SparseError::Parse(format!("bad size token: {t}")))
        })
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!(
            "size line must have 3 fields, found {}",
            dims.len()
        )));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(
        nrows,
        ncols,
        if symmetry == MmSymmetry::General {
            nnz
        } else {
            2 * nnz
        },
    );
    let mut entries_read = 0usize;
    for line in lines {
        let line = line.map_err(SparseError::from)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut tokens = trimmed.split_whitespace();
        let i: usize = tokens
            .next()
            .ok_or_else(|| SparseError::Parse("missing row index".into()))?
            .parse()
            .map_err(|_| SparseError::Parse(format!("bad row index in: {trimmed}")))?;
        let j: usize = tokens
            .next()
            .ok_or_else(|| SparseError::Parse("missing col index".into()))?
            .parse()
            .map_err(|_| SparseError::Parse(format!("bad col index in: {trimmed}")))?;
        let v: f64 = if pattern {
            1.0
        } else {
            tokens
                .next()
                .ok_or_else(|| SparseError::Parse("missing value".into()))?
                .parse()
                .map_err(|_| SparseError::Parse(format!("bad value in: {trimmed}")))?
        };
        if i == 0 || j == 0 {
            return Err(SparseError::Parse(
                "Matrix Market indices are 1-based; found 0".into(),
            ));
        }
        let (r, c) = (i - 1, j - 1);
        coo.push(r, c, v)?;
        match symmetry {
            MmSymmetry::Symmetric if r != c => coo.push(c, r, v)?,
            MmSymmetry::SkewSymmetric if r != c => coo.push(c, r, -v)?,
            _ => {}
        }
        entries_read += 1;
    }
    if entries_read != nnz {
        return Err(SparseError::Parse(format!(
            "expected {nnz} entries, found {entries_read}"
        )));
    }
    Ok(coo.to_csr())
}

/// Reads a Matrix Market file from disk.
///
/// # Errors
/// Propagates I/O and parse errors.
pub fn read_matrix_market<P: AsRef<Path>>(path: P) -> Result<CsrMatrix> {
    let file = std::fs::File::open(path)?;
    parse_matrix_market(file)
}

/// Writes a matrix in `coordinate real general` Matrix Market format.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_matrix_market<W: Write>(matrix: &CsrMatrix, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(
        w,
        "% written by lcr-sparse (lossy checkpointing reproduction)"
    )?;
    writeln!(w, "{} {} {}", matrix.nrows(), matrix.ncols(), matrix.nnz())?;
    for i in 0..matrix.nrows() {
        for (pos, &j) in matrix.row_indices(i).iter().enumerate() {
            let v = matrix.row_values(i)[pos];
            writeln!(w, "{} {} {:.17e}", i + 1, j + 1, v)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Writes a Matrix Market file to disk.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_matrix_market_file<P: AsRef<Path>>(matrix: &CsrMatrix, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_matrix_market(matrix, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::poisson2d;

    #[test]
    fn parse_general() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 4\n\
                    1 1 2.0\n\
                    2 2 3.0\n\
                    3 3 4.0\n\
                    1 3 -1.5\n";
        let m = parse_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 2), -1.5);
        assert_eq!(m.get(2, 2), 4.0);
    }

    #[test]
    fn parse_symmetric_mirrors_entries() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 4.0\n\
                    2 1 -1.0\n";
        let m = parse_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), -1.0);
        assert_eq!(m.get(1, 0), -1.0);
        assert_eq!(m.nnz(), 3);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn parse_pattern_and_skew() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 2\n\
                    1 1\n\
                    2 1\n";
        let m = parse_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 1.0);

        let skew = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 1\n\
                    2 1 3.0\n";
        let m = parse_matrix_market(skew.as_bytes()).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(0, 1), -3.0);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(parse_matrix_market("".as_bytes()).is_err());
        assert!(parse_matrix_market("not a banner\n1 1 0\n".as_bytes()).is_err());
        assert!(parse_matrix_market(
            "%%MatrixMarket matrix array real general\n2 2\n".as_bytes()
        )
        .is_err());
        // Wrong entry count.
        assert!(parse_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n".as_bytes()
        )
        .is_err());
        // 0-based index.
        assert!(parse_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n".as_bytes()
        )
        .is_err());
        // Bad value token.
        assert!(parse_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let a = poisson2d(5);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = parse_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.nnz(), b.nnz());
        for i in 0..a.nrows() {
            for (pos, &j) in a.row_indices(i).iter().enumerate() {
                assert!((a.row_values(i)[pos] - b.get(i, j)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let a = poisson2d(3);
        let dir = std::env::temp_dir().join("lcr_sparse_mm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("poisson2d_3.mtx");
        write_matrix_market_file(&a, &path).unwrap();
        let b = read_matrix_market(&path).unwrap();
        assert_eq!(a.nnz(), b.nnz());
        std::fs::remove_file(&path).ok();
    }
}
