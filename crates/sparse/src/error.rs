//! Error type shared by the sparse substrate.

use std::fmt;

/// Errors produced while building, converting, or using sparse matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// A matrix/vector dimension did not match what an operation required.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        context: String,
        /// Dimension that was expected.
        expected: usize,
        /// Dimension that was found.
        found: usize,
    },
    /// An entry referenced a row or column outside the matrix.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of rows in the matrix.
        nrows: usize,
        /// Number of columns in the matrix.
        ncols: usize,
    },
    /// The CSR structure is internally inconsistent (e.g. row pointers not
    /// monotonically non-decreasing).
    InvalidStructure(String),
    /// A matrix that must have a non-zero diagonal (Jacobi, Gauss–Seidel,
    /// ILU) is missing or has a zero diagonal entry.
    ZeroDiagonal(usize),
    /// Failure while parsing or writing a Matrix Market file.
    Io(String),
    /// The Matrix Market header or body was malformed.
    Parse(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, found {found}"
            ),
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "index ({row}, {col}) out of bounds for {nrows}x{ncols} matrix"
            ),
            SparseError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            SparseError::ZeroDiagonal(i) => {
                write!(f, "zero or missing diagonal entry at row {i}")
            }
            SparseError::Io(msg) => write!(f, "I/O error: {msg}"),
            SparseError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::DimensionMismatch {
            context: "spmv".into(),
            expected: 10,
            found: 5,
        };
        assert!(e.to_string().contains("spmv"));
        assert!(e.to_string().contains("10"));

        let e = SparseError::IndexOutOfBounds {
            row: 3,
            col: 7,
            nrows: 2,
            ncols: 2,
        };
        assert!(e.to_string().contains("(3, 7)"));

        let e = SparseError::ZeroDiagonal(4);
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn io_error_converts() {
        let ioe = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: SparseError = ioe.into();
        assert!(matches!(e, SparseError::Io(_)));
    }
}
