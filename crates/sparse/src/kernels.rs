//! Fused, deterministic solver kernels.
//!
//! The Krylov inner loops are bandwidth-bound chains of BLAS-1 sweeps and
//! SpMV traversals.  Executed as separate kernels they re-read the same
//! vectors from memory several times per iteration; this module fuses the
//! chains so each iteration makes roughly half the memory passes (the
//! README's "Solver kernel fusion" section tabulates the before/after
//! counts per solver).
//!
//! ## Determinism contract
//!
//! Every reduction here is computed over **fixed chunks**, and the
//! per-chunk partials are combined **in chunk order** on the calling
//! thread:
//!
//! * vector kernels split `0..len` with the same formula the rayon shim's
//!   iterator path uses (`len / DEFAULT_MIN_CHUNK`, clamped to
//!   `MAX_CHUNKS`), and every chunk body is one of the
//!   [`simd`](crate::simd) lane kernels (eight lane accumulators combined
//!   by a fixed pairwise tree), so e.g. the ‖r‖² returned by
//!   [`axpy2_norm2`] is bit-identical to a separate `dot(r, r)` sweep;
//! * SpMV-shaped kernels follow the matrix's precomputed
//!   [`SpmvPlan`](crate::csr::SpmvPlan) row partition and its SELL-style
//!   row blocks, which depend only on the matrix structure.
//!
//! Neither partition depends on the thread count, so every kernel is
//! **bit-identical at any `LCR_NUM_THREADS`** — the reproducibility
//! property the repository's thread-determinism tests pin.
//!
//! Elementwise kernels ([`axpby`], [`axpy2`], [`bicgstab_p_update`],
//! [`scale_into`], [`jacobi_sweep`]) are deterministic by construction:
//! each output element is a fixed expression of its inputs.

use crate::csr::{CsrMatrix, RowSink, SpmvPlan};
use crate::simd;
use crate::vector::PAR_THRESHOLD;

/// Shared-pointer wrapper so disjoint chunk ranges of one output buffer can
/// be written from pool workers.
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);

// SAFETY: the drivers below hand out non-overlapping index ranges, so
// concurrent `range_mut` views never alias.
unsafe impl Send for SendPtr {}
// SAFETY: same disjoint-range contract as `Send` above — a `&SendPtr`
// shared across threads only ever materialises non-aliasing views.
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Mutable view of `start..end` of the wrapped buffer, registered with
    /// `claims` — under the `racecheck` feature every claimed range is
    /// checked for overlap and bounds before the view is created.
    ///
    /// # Safety
    /// Ranges materialised across threads must be disjoint and in bounds —
    /// exactly what the chunk drivers below guarantee (and what `claims`
    /// asserts when `racecheck` is enabled).
    unsafe fn range_mut<'a>(self, claims: &rayon::racecheck::ClaimSet, start: usize, end: usize) -> &'a mut [f64] {
        claims.claim(start, end);
        // SAFETY: caller contract — `start..end` is in bounds of the
        // wrapped buffer and disjoint from every concurrently claimed
        // range.
        unsafe { std::slice::from_raw_parts_mut(self.0.add(start), end - start) }
    }
}

/// Runs `work(start, end)` over the deterministic length-based chunking of
/// `0..len` and returns the partials in chunk order.  Sequential below
/// [`PAR_THRESHOLD`]; above it, this delegates to the rayon shim's own
/// [`rayon::run_chunks`] so the split is **the same code** the
/// `par_iter()` reductions use — which is what makes a fused norm
/// bit-identical to a separate `dot` sweep.
pub(crate) fn run_len<R: Send>(len: usize, work: impl Fn(usize, usize) -> R + Sync) -> Vec<R> {
    if len < PAR_THRESHOLD {
        return vec![work(0, len)];
    }
    rayon::run_chunks(len, rayon::DEFAULT_MIN_CHUNK, work)
}

/// Runs `work(ci, r0, r1)` over the plan's nnz-balanced row chunks (chunk
/// index first, so SpMV-shaped kernels can reach the chunk's precomputed
/// row blocks), returning the partials in chunk order.
pub(crate) fn run_plan<R: Send>(
    plan: &SpmvPlan,
    work: impl Fn(usize, usize, usize) -> R + Sync,
) -> Vec<R> {
    let chunks = plan.chunks();
    if !plan.is_parallel() || chunks.len() == 1 {
        return chunks
            .iter()
            .enumerate()
            .map(|(ci, &(r0, r1))| work(ci, r0, r1))
            .collect();
    }
    rayon::run_ordered(chunks.len(), |i| {
        let (r0, r1) = chunks[i];
        work(i, r0, r1)
    })
}

/// `y = A·x` over the plan's row chunks (used by [`CsrMatrix::spmv`]).
/// Dimensions are checked by the caller.
pub(crate) fn spmv_into(a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
    let plan = a.plan();
    let yp = SendPtr(y.as_mut_ptr());
    let yc = rayon::racecheck::ClaimSet::new(y.len());
    run_plan(plan, |ci, r0, r1| {
        // SAFETY: plan chunks are disjoint row ranges within `0..nrows`.
        let ys = unsafe { yp.range_mut(&yc, r0, r1) };
        a.apply_chunk(plan, ci, x, |i, sum| ys[i - r0] = sum);
    });
}

/// `r = b − A·x` with the subtraction fused into the matrix traversal
/// (used by [`CsrMatrix::residual_into`]).  Dimensions are checked by the
/// caller.
pub(crate) fn residual_into(a: &CsrMatrix, x: &[f64], b: &[f64], r: &mut [f64]) {
    let plan = a.plan();
    let rp = SendPtr(r.as_mut_ptr());
    let rc = rayon::racecheck::ClaimSet::new(r.len());
    run_plan(plan, |ci, r0, r1| {
        // SAFETY: plan chunks are disjoint row ranges within `0..nrows`.
        let rs = unsafe { rp.range_mut(&rc, r0, r1) };
        let bs = &b[r0..r1];
        a.apply_chunk(plan, ci, x, |i, sum| rs[i - r0] = bs[i - r0] - sum);
    });
}

/// [`RowSink`] for [`spmv_dot`]: stores each row sum and accumulates the
/// dot product into eight lane accumulators.  Slab groups update all lanes
/// with one vectorizable sweep (`acc[l] += w[l]·sum[l]`); irregular rows
/// rotate through lanes by `row mod 8`, so no single FP-add dependency
/// chain ever serialises the reduction.  Both lane assignments are pure
/// functions of the matrix's plan — never of the thread count — keeping
/// the reduction bit-identical at any `LCR_NUM_THREADS`.
struct SpmvDotSink<'a> {
    ys: &'a mut [f64],
    ws: &'a [f64],
    r0: usize,
    acc: [f64; simd::LANES],
}

impl RowSink for SpmvDotSink<'_> {
    #[inline]
    fn row(&mut self, i: usize, sum: f64) {
        let j = i - self.r0;
        self.ys[j] = sum;
        self.acc[j % simd::LANES] += self.ws[j] * sum;
    }

    #[inline]
    fn slab(&mut self, r: usize, sums: &[f64; simd::LANES]) {
        let j0 = r - self.r0;
        self.ys[j0..j0 + simd::LANES].copy_from_slice(sums);
        let ws = &self.ws[j0..j0 + simd::LANES];
        for l in 0..simd::LANES {
            self.acc[l] += ws[l] * sums[l];
        }
    }
}

/// [`RowSink`] for [`residual_norm2`] — same lane scheme as
/// [`SpmvDotSink`], accumulating `(b − A·x)²`.
struct ResidualNorm2Sink<'a> {
    rs: &'a mut [f64],
    bs: &'a [f64],
    r0: usize,
    acc: [f64; simd::LANES],
}

impl RowSink for ResidualNorm2Sink<'_> {
    #[inline]
    fn row(&mut self, i: usize, sum: f64) {
        let j = i - self.r0;
        let rv = self.bs[j] - sum;
        self.rs[j] = rv;
        self.acc[j % simd::LANES] += rv * rv;
    }

    #[inline]
    fn slab(&mut self, r: usize, sums: &[f64; simd::LANES]) {
        let j0 = r - self.r0;
        let rs = &mut self.rs[j0..j0 + simd::LANES];
        let bs = &self.bs[j0..j0 + simd::LANES];
        for l in 0..simd::LANES {
            let rv = bs[l] - sums[l];
            rs[l] = rv;
            self.acc[l] += rv * rv;
        }
    }
}

/// Fused SpMV + dot: `y = A·x` and `wᵀy`, in one traversal of the matrix.
///
/// CG calls this with `w = x = p` (for `pᵀA p`), BiCGStab with `w = r̂`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn spmv_dot(a: &CsrMatrix, x: &[f64], y: &mut [f64], w: &[f64]) -> f64 {
    assert_eq!(x.len(), a.ncols(), "spmv_dot: x length mismatch");
    assert_eq!(y.len(), a.nrows(), "spmv_dot: y length mismatch");
    assert_eq!(w.len(), a.nrows(), "spmv_dot: w length mismatch");
    let plan = a.plan();
    let yp = SendPtr(y.as_mut_ptr());
    let yc = rayon::racecheck::ClaimSet::new(y.len());
    let partials = run_plan(plan, |ci, r0, r1| {
        // SAFETY: plan chunks are disjoint row ranges within `0..nrows`.
        let ys = unsafe { yp.range_mut(&yc, r0, r1) };
        let ws = &w[r0..r1];
        let mut sink = SpmvDotSink {
            ys,
            ws,
            r0,
            acc: [0.0; simd::LANES],
        };
        a.apply_chunk_sink(plan, ci, x, &mut sink);
        simd::hsum(sink.acc)
    });
    partials.into_iter().sum()
}

/// Fused residual + norm: `r = b − A·x`, returning ‖r‖², in one traversal
/// (the Krylov rebuild / recovery path, previously `residual_into`
/// followed by a separate `norm2` sweep).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn residual_norm2(a: &CsrMatrix, x: &[f64], b: &[f64], r: &mut [f64]) -> f64 {
    assert_eq!(x.len(), a.ncols(), "residual_norm2: x length mismatch");
    assert_eq!(b.len(), a.nrows(), "residual_norm2: b length mismatch");
    assert_eq!(r.len(), a.nrows(), "residual_norm2: r length mismatch");
    let plan = a.plan();
    let rp = SendPtr(r.as_mut_ptr());
    let rc = rayon::racecheck::ClaimSet::new(r.len());
    let partials = run_plan(plan, |ci, r0, r1| {
        // SAFETY: plan chunks are disjoint row ranges within `0..nrows`.
        let rs = unsafe { rp.range_mut(&rc, r0, r1) };
        let bs = &b[r0..r1];
        let mut sink = ResidualNorm2Sink {
            rs,
            bs,
            r0,
            acc: [0.0; simd::LANES],
        };
        a.apply_chunk_sink(plan, ci, x, &mut sink);
        simd::hsum(sink.acc)
    });
    partials.into_iter().sum()
}

/// Fused CG solution/residual update: `x += α·p`, `r −= α·q`, returning
/// ‖r‖², in one pass over the four vectors — replacing two separate axpys
/// plus a norm sweep.
///
/// # Panics
/// Panics on length mismatch.
pub fn axpy2_norm2(alpha: f64, p: &[f64], q: &[f64], x: &mut [f64], r: &mut [f64]) -> f64 {
    let n = x.len();
    assert_eq!(p.len(), n, "axpy2_norm2: p length mismatch");
    assert_eq!(q.len(), n, "axpy2_norm2: q length mismatch");
    assert_eq!(r.len(), n, "axpy2_norm2: r length mismatch");
    let xp = SendPtr(x.as_mut_ptr());
    let rp = SendPtr(r.as_mut_ptr());
    let xc = rayon::racecheck::ClaimSet::new(n);
    let rc = rayon::racecheck::ClaimSet::new(n);
    let partials = run_len(n, |s, e| {
        // SAFETY: length chunks are disjoint, and `x` and `r` are distinct
        // `&mut` buffers, so the two views never alias each other either.
        let (xs, rs) = unsafe { (xp.range_mut(&xc, s, e), rp.range_mut(&rc, s, e)) };
        crate::simd::axpy2_norm2(alpha, &p[s..e], &q[s..e], xs, rs)
    });
    partials.into_iter().sum()
}

/// Fused write-axpy + norm: `out = x + α·y`, returning ‖out‖² — BiCGStab's
/// `s = r − α v` and `r = s − ω t` updates, each previously a copy, an
/// axpy and a norm sweep.
///
/// # Panics
/// Panics on length mismatch.
pub fn waxpy_norm2(out: &mut [f64], x: &[f64], alpha: f64, y: &[f64]) -> f64 {
    let n = out.len();
    assert_eq!(x.len(), n, "waxpy_norm2: x length mismatch");
    assert_eq!(y.len(), n, "waxpy_norm2: y length mismatch");
    let op = SendPtr(out.as_mut_ptr());
    let oc = rayon::racecheck::ClaimSet::new(n);
    let partials = run_len(n, |s, e| {
        // SAFETY: length chunks are disjoint.
        let os = unsafe { op.range_mut(&oc, s, e) };
        crate::simd::waxpy_norm2(os, &x[s..e], alpha, &y[s..e])
    });
    partials.into_iter().sum()
}

/// Fused axpy + norm: `y += α·x`, returning ‖y‖² — GMRES folds the last
/// Gram–Schmidt subtraction and the next basis vector's norm into one
/// pass.
///
/// # Panics
/// Panics on length mismatch.
pub fn axpy_norm2(alpha: f64, x: &[f64], y: &mut [f64]) -> f64 {
    let n = y.len();
    assert_eq!(x.len(), n, "axpy_norm2: x length mismatch");
    let yp = SendPtr(y.as_mut_ptr());
    let yc = rayon::racecheck::ClaimSet::new(n);
    let partials = run_len(n, |s, e| {
        // SAFETY: length chunks are disjoint.
        let ys = unsafe { yp.range_mut(&yc, s, e) };
        crate::simd::axpy_norm2(alpha, &x[s..e], ys)
    });
    partials.into_iter().sum()
}

/// Two dot products sharing an operand, in one sweep: `(sᵀa, sᵀb)` —
/// BiCGStab's `(tᵀt, tᵀs)` stabilisation pair.
///
/// # Panics
/// Panics on length mismatch.
pub fn dot2(s: &[f64], a: &[f64], b: &[f64]) -> (f64, f64) {
    let n = s.len();
    assert_eq!(a.len(), n, "dot2: a length mismatch");
    assert_eq!(b.len(), n, "dot2: b length mismatch");
    let partials = run_len(n, |lo, hi| {
        crate::simd::dot2(&s[lo..hi], &a[lo..hi], &b[lo..hi])
    });
    partials
        .into_iter()
        .fold((0.0, 0.0), |(ta, tb), (pa, pb)| (ta + pa, tb + pb))
}

/// `y = α·x + β·y` in one pass.
///
/// # Panics
/// Panics on length mismatch.
pub fn axpby(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    let n = y.len();
    assert_eq!(x.len(), n, "axpby: x length mismatch");
    let yp = SendPtr(y.as_mut_ptr());
    let yc = rayon::racecheck::ClaimSet::new(n);
    run_len(n, |s, e| {
        // SAFETY: length chunks are disjoint.
        let ys = unsafe { yp.range_mut(&yc, s, e) };
        for (yi, xi) in ys.iter_mut().zip(&x[s..e]) {
            *yi = alpha * xi + beta * *yi;
        }
    });
}

/// `y += α·a + β·b` in one pass — BiCGStab's solution update
/// `x += α p̂ + ω ŝ`, previously two separate axpys.
///
/// # Panics
/// Panics on length mismatch.
pub fn axpy2(y: &mut [f64], alpha: f64, a: &[f64], beta: f64, b: &[f64]) {
    let n = y.len();
    assert_eq!(a.len(), n, "axpy2: a length mismatch");
    assert_eq!(b.len(), n, "axpy2: b length mismatch");
    let yp = SendPtr(y.as_mut_ptr());
    let yc = rayon::racecheck::ClaimSet::new(n);
    run_len(n, |s, e| {
        // SAFETY: length chunks are disjoint.
        let ys = unsafe { yp.range_mut(&yc, s, e) };
        for (yi, (ai, bi)) in ys.iter_mut().zip(a[s..e].iter().zip(&b[s..e])) {
            *yi = (*yi + alpha * ai) + beta * bi;
        }
    });
}

/// BiCGStab search-direction refresh `p = r + β (p − ω v)` in one pass —
/// previously an axpy, a scale and a second axpy: three passes over `p`.
/// The per-element arithmetic order matches the unfused chain, so the
/// result is bit-identical to it.
///
/// # Panics
/// Panics on length mismatch.
pub fn bicgstab_p_update(p: &mut [f64], r: &[f64], v: &[f64], beta: f64, omega: f64) {
    let n = p.len();
    assert_eq!(r.len(), n, "bicgstab_p_update: r length mismatch");
    assert_eq!(v.len(), n, "bicgstab_p_update: v length mismatch");
    let pp = SendPtr(p.as_mut_ptr());
    let pc = rayon::racecheck::ClaimSet::new(n);
    run_len(n, |s, e| {
        // SAFETY: length chunks are disjoint.
        let ps = unsafe { pp.range_mut(&pc, s, e) };
        crate::simd::bicgstab_p_update(ps, &r[s..e], &v[s..e], beta, omega);
    });
}

/// `out = α·x` in one pass — GMRES basis normalisation, previously a clone
/// plus an in-place scale (a redundant copy and a second pass).
///
/// # Panics
/// Panics on length mismatch.
pub fn scale_into(out: &mut [f64], alpha: f64, x: &[f64]) {
    let n = out.len();
    assert_eq!(x.len(), n, "scale_into: x length mismatch");
    let op = SendPtr(out.as_mut_ptr());
    let oc = rayon::racecheck::ClaimSet::new(n);
    run_len(n, |s, e| {
        // SAFETY: length chunks are disjoint.
        let os = unsafe { op.range_mut(&oc, s, e) };
        for (oi, xi) in os.iter_mut().zip(&x[s..e]) {
            *oi = alpha * xi;
        }
    });
}

/// One Jacobi sweep `out_i = (b_i − Σ_{j≠i} a_ij x_j) / a_ii`,
/// parallelised over the plan's row chunks.  The sweep reads only the
/// previous iterate, so rows are independent; the per-row arithmetic order
/// matches the sequential sweep, so the result is bit-identical to it.
///
/// `out` must not alias `x` (guaranteed by the `&mut`/`&` signature).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn jacobi_sweep(a: &CsrMatrix, x: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), a.ncols(), "jacobi_sweep: x length mismatch");
    assert_eq!(b.len(), a.nrows(), "jacobi_sweep: b length mismatch");
    assert_eq!(out.len(), a.nrows(), "jacobi_sweep: out length mismatch");
    let plan = a.plan();
    let (indptr, indices, values) = (a.indptr(), a.indices(), a.values());
    let op = SendPtr(out.as_mut_ptr());
    let oc = rayon::racecheck::ClaimSet::new(out.len());
    run_plan(plan, |_ci, r0, r1| {
        // SAFETY: plan chunks are disjoint row ranges within `0..nrows`.
        let os = unsafe { op.range_mut(&oc, r0, r1) };
        let mut k = indptr[r0];
        for i in r0..r1 {
            let end = indptr[i + 1];
            let mut sigma = 0.0;
            let mut diag = 0.0;
            for (v, &c) in values[k..end].iter().zip(&indices[k..end]) {
                if c == i {
                    diag = *v;
                } else {
                    debug_assert!(c < x.len(), "CSR column {c} out of bounds");
                    // SAFETY: `c < ncols` (CSR invariant) and
                    // `x.len() == ncols` (asserted above).
                    sigma += v * unsafe { x.get_unchecked(c) };
                }
            }
            os[i - r0] = (b[i] - sigma) / diag;
            k = end;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::poisson2d;
    use crate::Vector;

    fn rand_vec(n: usize, seed: u64) -> Vector {
        let mut v = Vector::zeros(n);
        v.fill_random(seed, -1.0, 1.0);
        v
    }

    #[test]
    fn spmv_dot_matches_composition() {
        for n in [7usize, 40] {
            let a = poisson2d(n);
            let dim = a.nrows();
            let x = rand_vec(dim, 1);
            let w = rand_vec(dim, 2);
            let mut y_fused = Vector::zeros(dim);
            let wy = spmv_dot(&a, &x, y_fused.as_mut_slice(), &w);
            let y_ref = a.mul_vec(&x);
            assert_eq!(y_fused, y_ref);
            let wy_ref = w.dot(&y_ref);
            assert!((wy - wy_ref).abs() <= 1e-12 * wy_ref.abs().max(1.0));
        }
    }

    #[test]
    fn residual_norm2_matches_composition() {
        let a = poisson2d(20);
        let dim = a.nrows();
        let x = rand_vec(dim, 3);
        let b = rand_vec(dim, 4);
        let mut r = Vector::zeros(dim);
        let rr = residual_norm2(&a, &x, &b, r.as_mut_slice());
        let r_ref = a.residual(&x, &b);
        assert_eq!(r, r_ref);
        let rr_ref = r_ref.dot(&r_ref);
        assert!((rr - rr_ref).abs() <= 1e-12 * rr_ref.max(1.0));
    }

    #[test]
    fn axpy2_norm2_matches_composition() {
        let n = PAR_THRESHOLD + 33;
        let p = rand_vec(n, 5);
        let q = rand_vec(n, 6);
        let mut x = rand_vec(n, 7);
        let mut r = rand_vec(n, 8);
        let (x0, r0) = (x.clone(), r.clone());
        let alpha = 0.37;
        let rr = axpy2_norm2(alpha, &p, &q, x.as_mut_slice(), r.as_mut_slice());
        let mut x_ref = x0;
        let mut r_ref = r0;
        x_ref.axpy(alpha, &p);
        r_ref.axpy(-alpha, &q);
        assert_eq!(x, x_ref);
        assert_eq!(r, r_ref);
        // Same chunking as `dot`, so the fused norm is bit-identical.
        assert_eq!(rr.to_bits(), r_ref.dot(&r_ref).to_bits());
    }

    #[test]
    fn waxpy_and_axpy_norms_match() {
        let n = 1234;
        let x = rand_vec(n, 9);
        let y = rand_vec(n, 10);
        let mut out = Vector::zeros(n);
        let ss = waxpy_norm2(out.as_mut_slice(), &x, -0.25, &y);
        let mut ref_out = x.clone();
        ref_out.axpy(-0.25, &y);
        assert_eq!(out, ref_out);
        assert_eq!(ss.to_bits(), ref_out.dot(&ref_out).to_bits());

        let mut y2 = y.clone();
        let nn = axpy_norm2(0.5, &x, y2.as_mut_slice());
        let mut y_ref = y.clone();
        y_ref.axpy(0.5, &x);
        assert_eq!(y2, y_ref);
        assert_eq!(nn.to_bits(), y_ref.dot(&y_ref).to_bits());
    }

    #[test]
    fn dot2_matches_two_dots() {
        let n = PAR_THRESHOLD + 5;
        let s = rand_vec(n, 11);
        let a = rand_vec(n, 12);
        let b = rand_vec(n, 13);
        let (sa, sb) = dot2(&s, &a, &b);
        assert_eq!(sa.to_bits(), s.dot(&a).to_bits());
        assert_eq!(sb.to_bits(), s.dot(&b).to_bits());
    }

    #[test]
    fn elementwise_kernels_match_chains() {
        let n = 777;
        let r = rand_vec(n, 14);
        let v = rand_vec(n, 15);
        let p0 = rand_vec(n, 16);
        let (beta, omega) = (1.7, 0.6);

        let mut p_fused = p0.clone();
        bicgstab_p_update(p_fused.as_mut_slice(), &r, &v, beta, omega);
        let mut p_ref = p0.clone();
        p_ref.axpy(-omega, &v);
        p_ref.scale(beta);
        p_ref.axpy(1.0, &r);
        assert_eq!(p_fused, p_ref);

        let mut y = p0.clone();
        axpy2(y.as_mut_slice(), 0.3, &r, -0.8, &v);
        let mut y_ref = p0.clone();
        y_ref.axpy(0.3, &r);
        y_ref.axpy(-0.8, &v);
        assert_eq!(y, y_ref);

        let mut z = p0.clone();
        axpby(2.0, &r, -0.5, z.as_mut_slice());
        for i in 0..n {
            assert_eq!(z[i], 2.0 * r[i] + -0.5 * p0[i]);
        }

        let mut sc = Vector::zeros(n);
        scale_into(sc.as_mut_slice(), 3.0, &r);
        for i in 0..n {
            assert_eq!(sc[i], 3.0 * r[i]);
        }
    }

    #[test]
    fn jacobi_sweep_matches_sequential_reference() {
        let a = poisson2d(12);
        let dim = a.nrows();
        let x = rand_vec(dim, 17);
        let b = rand_vec(dim, 18);
        let mut out = Vector::zeros(dim);
        jacobi_sweep(&a, &x, &b, out.as_mut_slice());
        for i in 0..dim {
            let mut sigma = 0.0;
            let mut diag = 0.0;
            for (pos, &j) in a.row_indices(i).iter().enumerate() {
                if j == i {
                    diag = a.row_values(i)[pos];
                } else {
                    sigma += a.row_values(i)[pos] * x[j];
                }
            }
            let expect = (b[i] - sigma) / diag;
            assert_eq!(out[i], expect);
        }
    }
}
