//! Portable SIMD lane layer for the hot vector kernels.
//!
//! Every reduction in this crate used to fold its chunk through one scalar
//! accumulator — a loop-carried dependency that caps throughput at one
//! `add` latency per element no matter how wide the machine's vector units
//! are.  This module restructures those loops around **eight independent
//! lane accumulators**: element `i` of a chunk always feeds lane
//! `i % LANES`, groups of eight elements are processed as `[f64; 8]`
//! blocks (which the compiler auto-vectorizes on any SSE2/AVX target — no
//! `core::arch` intrinsics, no `unsafe`), and the lanes are combined by a
//! **fixed pairwise tree** ([`hsum`]) at the end of the chunk.
//!
//! ## Determinism contract
//!
//! The lane decomposition is part of the numeric contract, not an
//! implementation detail:
//!
//! * lane assignment (`i % LANES`), per-lane accumulation order (ascending
//!   `i` within a lane) and the [`hsum`] combination tree depend only on
//!   the chunk length — never on the thread count or the machine's actual
//!   vector width;
//! * Rust never contracts `a * b + c` into an FMA on its own, so the lane
//!   arithmetic is the same IEEE-754 operation sequence whether the
//!   compiler lowers it to SSE2, AVX2 or scalar code;
//! * the [`scalar`] submodule re-computes every kernel with plain
//!   index-arithmetic loops (no `[f64; 8]` blocks for the compiler to
//!   vectorize); the `simd_equivalence` proptests pin the vectorized and
//!   scalar paths bit-for-bit against each other at 1 and N threads.
//!
//! Because `vector::dot`, `dot2` and the fused `*_norm2` kernels all use
//! these same lane kernels over the same chunk partition, identities like
//! "the ‖r‖² returned by `axpy2_norm2` equals a separate `dot(r, r)`
//! sweep" continue to hold bit-for-bit.

/// Number of lane accumulators (and the block width of the vectorized
/// loops): eight `f64`, one AVX-512 register or two AVX2 registers wide.
pub const LANES: usize = 8;

/// Combines the eight lane accumulators with a fixed pairwise tree:
/// `((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))`.
///
/// The tree shape is part of the determinism contract — every reduction in
/// the crate ends its chunks with exactly this combination.
#[inline]
pub fn hsum(acc: [f64; LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Lane-structured dot product of one chunk: `Σ a[i]·b[i]`.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "simd::dot: length mismatch");
    let mut acc = [0.0f64; LANES];
    let mut blocks = a.chunks_exact(LANES).zip(b.chunks_exact(LANES));
    for (va, vb) in &mut blocks {
        for j in 0..LANES {
            acc[j] += va[j] * vb[j];
        }
    }
    let (ta, tb) = (
        a.chunks_exact(LANES).remainder(),
        b.chunks_exact(LANES).remainder(),
    );
    for j in 0..ta.len() {
        acc[j] += ta[j] * tb[j];
    }
    hsum(acc)
}

/// Two lane-structured dot products sharing the operand `s`:
/// `(Σ s[i]·a[i], Σ s[i]·b[i])`.  Each component is bit-identical to a
/// separate [`dot`] call over the same chunk.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn dot2(s: &[f64], a: &[f64], b: &[f64]) -> (f64, f64) {
    assert_eq!(s.len(), a.len(), "simd::dot2: length mismatch");
    assert_eq!(s.len(), b.len(), "simd::dot2: length mismatch");
    let mut aa = [0.0f64; LANES];
    let mut ab = [0.0f64; LANES];
    let mut blocks = s
        .chunks_exact(LANES)
        .zip(a.chunks_exact(LANES).zip(b.chunks_exact(LANES)));
    for (vs, (va, vb)) in &mut blocks {
        for j in 0..LANES {
            aa[j] += vs[j] * va[j];
            ab[j] += vs[j] * vb[j];
        }
    }
    let ts = s.chunks_exact(LANES).remainder();
    let ta = a.chunks_exact(LANES).remainder();
    let tb = b.chunks_exact(LANES).remainder();
    for j in 0..ts.len() {
        aa[j] += ts[j] * ta[j];
        ab[j] += ts[j] * tb[j];
    }
    (hsum(aa), hsum(ab))
}

/// Fused CG update over one chunk: `x += α·p`, `r −= α·q`, returning the
/// lane-structured `Σ r_new²` (bit-identical to [`dot`] of the updated `r`
/// with itself over the same chunk).
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn axpy2_norm2(alpha: f64, p: &[f64], q: &[f64], x: &mut [f64], r: &mut [f64]) -> f64 {
    let n = x.len();
    assert_eq!(p.len(), n, "simd::axpy2_norm2: length mismatch");
    assert_eq!(q.len(), n, "simd::axpy2_norm2: length mismatch");
    assert_eq!(r.len(), n, "simd::axpy2_norm2: length mismatch");
    let mut acc = [0.0f64; LANES];
    let head = n - n % LANES;
    let (xh, xt) = x.split_at_mut(head);
    let (rh, rt) = r.split_at_mut(head);
    let mut blocks = xh
        .chunks_exact_mut(LANES)
        .zip(rh.chunks_exact_mut(LANES))
        .zip(p.chunks_exact(LANES).zip(q.chunks_exact(LANES)));
    for ((vx, vr), (vp, vq)) in &mut blocks {
        for j in 0..LANES {
            vx[j] += alpha * vp[j];
            let rv = vr[j] - alpha * vq[j];
            vr[j] = rv;
            acc[j] += rv * rv;
        }
    }
    for j in 0..xt.len() {
        xt[j] += alpha * p[head + j];
        let rv = rt[j] - alpha * q[head + j];
        rt[j] = rv;
        acc[j] += rv * rv;
    }
    hsum(acc)
}

/// Fused write-axpy + norm over one chunk: `out = x + α·y`, returning the
/// lane-structured `Σ out²`.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn waxpy_norm2(out: &mut [f64], x: &[f64], alpha: f64, y: &[f64]) -> f64 {
    let n = out.len();
    assert_eq!(x.len(), n, "simd::waxpy_norm2: length mismatch");
    assert_eq!(y.len(), n, "simd::waxpy_norm2: length mismatch");
    let mut acc = [0.0f64; LANES];
    let head = n - n % LANES;
    let (oh, ot) = out.split_at_mut(head);
    let mut blocks = oh
        .chunks_exact_mut(LANES)
        .zip(x.chunks_exact(LANES).zip(y.chunks_exact(LANES)));
    for (vo, (vx, vy)) in &mut blocks {
        for j in 0..LANES {
            let v = vx[j] + alpha * vy[j];
            vo[j] = v;
            acc[j] += v * v;
        }
    }
    for j in 0..ot.len() {
        let v = x[head + j] + alpha * y[head + j];
        ot[j] = v;
        acc[j] += v * v;
    }
    hsum(acc)
}

/// Fused axpy + norm over one chunk: `y += α·x`, returning the
/// lane-structured `Σ y_new²`.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn axpy_norm2(alpha: f64, x: &[f64], y: &mut [f64]) -> f64 {
    let n = y.len();
    assert_eq!(x.len(), n, "simd::axpy_norm2: length mismatch");
    let mut acc = [0.0f64; LANES];
    let head = n - n % LANES;
    let (yh, yt) = y.split_at_mut(head);
    let mut blocks = yh.chunks_exact_mut(LANES).zip(x.chunks_exact(LANES));
    for (vy, vx) in &mut blocks {
        for j in 0..LANES {
            let v = vy[j] + alpha * vx[j];
            vy[j] = v;
            acc[j] += v * v;
        }
    }
    for j in 0..yt.len() {
        let v = yt[j] + alpha * x[head + j];
        yt[j] = v;
        acc[j] += v * v;
    }
    hsum(acc)
}

/// BiCGStab search-direction refresh over one chunk:
/// `p = (p − ω·v)·β + r`, element-wise (no reduction — per-element bits are
/// unchanged from the scalar formulation, the blocks only widen the loop).
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn bicgstab_p_update(p: &mut [f64], r: &[f64], v: &[f64], beta: f64, omega: f64) {
    let n = p.len();
    assert_eq!(r.len(), n, "simd::bicgstab_p_update: length mismatch");
    assert_eq!(v.len(), n, "simd::bicgstab_p_update: length mismatch");
    let head = n - n % LANES;
    let (ph, pt) = p.split_at_mut(head);
    let mut blocks = ph
        .chunks_exact_mut(LANES)
        .zip(r.chunks_exact(LANES).zip(v.chunks_exact(LANES)));
    for (vp, (vr, vv)) in &mut blocks {
        for j in 0..LANES {
            vp[j] = (vp[j] - omega * vv[j]) * beta + vr[j];
        }
    }
    for j in 0..pt.len() {
        pt[j] = (pt[j] - omega * v[head + j]) * beta + r[head + j];
    }
}

/// Scalar reference implementations of every lane kernel above.
///
/// These compute the **same lane recurrence** (element `i` feeds
/// accumulator `i % LANES`, lanes combined by the [`hsum`] tree) with
/// plain one-element-at-a-time loops — no `[f64; 8]` blocks for the
/// compiler to vectorize.  The `simd_equivalence` proptests assert the
/// vectorized kernels match these bit-for-bit, which pins down that the
/// lane layer changes *how fast* the kernels run, never *what* they
/// compute.
pub mod scalar {
    use super::{hsum, LANES};

    /// Scalar mirror of [`super::dot`].
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "scalar::dot: length mismatch");
        let mut acc = [0.0f64; LANES];
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            acc[i % LANES] += x * y;
        }
        hsum(acc)
    }

    /// Scalar mirror of [`super::dot2`].
    pub fn dot2(s: &[f64], a: &[f64], b: &[f64]) -> (f64, f64) {
        assert_eq!(s.len(), a.len(), "scalar::dot2: length mismatch");
        assert_eq!(s.len(), b.len(), "scalar::dot2: length mismatch");
        let mut aa = [0.0f64; LANES];
        let mut ab = [0.0f64; LANES];
        for i in 0..s.len() {
            aa[i % LANES] += s[i] * a[i];
            ab[i % LANES] += s[i] * b[i];
        }
        (hsum(aa), hsum(ab))
    }

    /// Scalar mirror of [`super::axpy2_norm2`].
    pub fn axpy2_norm2(alpha: f64, p: &[f64], q: &[f64], x: &mut [f64], r: &mut [f64]) -> f64 {
        let n = x.len();
        assert_eq!(p.len(), n, "scalar::axpy2_norm2: length mismatch");
        assert_eq!(q.len(), n, "scalar::axpy2_norm2: length mismatch");
        assert_eq!(r.len(), n, "scalar::axpy2_norm2: length mismatch");
        let mut acc = [0.0f64; LANES];
        for i in 0..n {
            x[i] += alpha * p[i];
            let rv = r[i] - alpha * q[i];
            r[i] = rv;
            acc[i % LANES] += rv * rv;
        }
        hsum(acc)
    }

    /// Scalar mirror of [`super::waxpy_norm2`].
    pub fn waxpy_norm2(out: &mut [f64], x: &[f64], alpha: f64, y: &[f64]) -> f64 {
        let n = out.len();
        assert_eq!(x.len(), n, "scalar::waxpy_norm2: length mismatch");
        assert_eq!(y.len(), n, "scalar::waxpy_norm2: length mismatch");
        let mut acc = [0.0f64; LANES];
        for i in 0..n {
            let v = x[i] + alpha * y[i];
            out[i] = v;
            acc[i % LANES] += v * v;
        }
        hsum(acc)
    }

    /// Scalar mirror of [`super::axpy_norm2`].
    pub fn axpy_norm2(alpha: f64, x: &[f64], y: &mut [f64]) -> f64 {
        let n = y.len();
        assert_eq!(x.len(), n, "scalar::axpy_norm2: length mismatch");
        let mut acc = [0.0f64; LANES];
        for i in 0..n {
            let v = y[i] + alpha * x[i];
            y[i] = v;
            acc[i % LANES] += v * v;
        }
        hsum(acc)
    }

    /// Scalar mirror of [`super::bicgstab_p_update`].
    pub fn bicgstab_p_update(p: &mut [f64], r: &[f64], v: &[f64], beta: f64, omega: f64) {
        let n = p.len();
        assert_eq!(r.len(), n, "scalar::bicgstab_p_update: length mismatch");
        assert_eq!(v.len(), n, "scalar::bicgstab_p_update: length mismatch");
        for i in 0..n {
            p[i] = (p[i] - omega * v[i]) * beta + r[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn lane_kernels_match_scalar_mirrors_at_awkward_lengths() {
        // Lengths straddling every tail case: 0..=2·LANES plus larger odd
        // sizes, so the block/remainder split is fully exercised.
        let sizes: Vec<usize> = (0..=2 * LANES).chain([129, 1000, 4097]).collect();
        for n in sizes {
            let a = rand(n, 1);
            let b = rand(n, 2);
            let c = rand(n, 3);
            assert_eq!(dot(&a, &b).to_bits(), scalar::dot(&a, &b).to_bits());
            let (u, v) = dot2(&a, &b, &c);
            let (su, sv) = scalar::dot2(&a, &b, &c);
            assert_eq!(u.to_bits(), su.to_bits());
            assert_eq!(v.to_bits(), sv.to_bits());

            let (mut x1, mut r1) = (a.clone(), b.clone());
            let (mut x2, mut r2) = (a.clone(), b.clone());
            let n1 = axpy2_norm2(0.37, &c, &a, &mut x1, &mut r1);
            let n2 = scalar::axpy2_norm2(0.37, &c, &a, &mut x2, &mut r2);
            assert_eq!(n1.to_bits(), n2.to_bits());
            assert_eq!(x1, x2);
            assert_eq!(r1, r2);
        }
    }

    #[test]
    fn norm_kernels_agree_with_dot() {
        // The contract the fused kernels rely on: a fused ‖·‖² equals a
        // separate lane dot of the result with itself.
        let n = 1003;
        let x = rand(n, 4);
        let y = rand(n, 5);
        let mut out = vec![0.0; n];
        let ss = waxpy_norm2(&mut out, &x, -0.25, &y);
        assert_eq!(ss.to_bits(), dot(&out, &out).to_bits());

        let mut y2 = y.clone();
        let nn = axpy_norm2(0.5, &x, &mut y2);
        assert_eq!(nn.to_bits(), dot(&y2, &y2).to_bits());
    }

    #[test]
    fn empty_chunks_reduce_to_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot2(&[], &[], &[]), (0.0, 0.0));
    }
}
