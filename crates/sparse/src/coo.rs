//! Coordinate (triplet) sparse matrix builder.
//!
//! The COO format is the convenient *construction* format: the matrix
//! generators ([`crate::poisson`], [`crate::kkt`]) and the Matrix Market
//! reader push `(row, col, value)` triplets and then convert once to
//! [`crate::CsrMatrix`] for computation.

use crate::{CsrMatrix, Result, SparseError};
use serde::{Deserialize, Serialize};

/// A sparse matrix in coordinate (triplet) format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `nrows x ncols` COO matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty matrix with capacity reserved for `nnz` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, nnz: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(nnz),
            cols: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends an entry. Entries with the same `(row, col)` are summed when
    /// converting to CSR, mirroring Matrix Market semantics.
    ///
    /// # Errors
    /// Returns [`SparseError::IndexOutOfBounds`] if the position lies outside
    /// the matrix.
    pub fn push(&mut self, row: usize, col: usize, val: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Iterates over the stored triplets.
    pub fn triplets(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.vals.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to CSR, summing duplicate entries and dropping explicit
    /// zeros that result from cancellation.
    pub fn to_csr(&self) -> CsrMatrix {
        // Count entries per row.
        let mut counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        // Scatter into row-grouped buffers.
        let mut col_buf = vec![0usize; self.nnz()];
        let mut val_buf = vec![0.0f64; self.nnz()];
        let mut next = counts.clone();
        for i in 0..self.nnz() {
            let r = self.rows[i];
            let dst = next[r];
            col_buf[dst] = self.cols[i];
            val_buf[dst] = self.vals[i];
            next[r] += 1;
        }
        // Sort each row by column and merge duplicates.
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        indptr.push(0usize);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            scratch.clear();
            let (start, end) = (counts[r], counts[r + 1]);
            scratch.extend(
                col_buf[start..end]
                    .iter()
                    .copied()
                    .zip(val_buf[start..end].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let col = scratch[i].0;
                let mut sum = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == col {
                    sum += scratch[j].1;
                    j += 1;
                }
                indices.push(col);
                values.push(sum);
                i = j;
            }
            indptr.push(indices.len());
        }
        let csr = CsrMatrix::from_raw_unchecked(self.nrows, self.ncols, indptr, indices, values);
        // COO → CSR is a finalize point: build the SpMV plan eagerly so the
        // generators hand out matrices that never pay for it mid-solve.
        csr.plan();
        csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_convert() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        coo.push(2, 2, 4.0).unwrap();
        coo.push(0, 2, 1.0).unwrap();
        assert_eq!(coo.nnz(), 4);
        let csr = coo.to_csr();
        assert_eq!(csr.nrows(), 3);
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.get(0, 0), 2.0);
        assert_eq!(csr.get(0, 2), 1.0);
        assert_eq!(csr.get(2, 2), 4.0);
        assert_eq!(csr.get(2, 0), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 2.5).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 0), 3.5);
        assert_eq!(csr.get(1, 0), -1.0);
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 5, 1.0).is_err());
        assert_eq!(coo.nnz(), 0);
    }

    #[test]
    fn rows_sorted_in_csr() {
        let mut coo = CooMatrix::with_capacity(1, 4, 3);
        coo.push(0, 3, 3.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.row_indices(0), &[1, 2, 3]);
        assert_eq!(csr.row_values(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn triplets_roundtrip() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 1, 5.0).unwrap();
        let t: Vec<_> = coo.triplets().collect();
        assert_eq!(t, vec![(1, 1, 5.0)]);
        assert_eq!(coo.nrows(), 2);
        assert_eq!(coo.ncols(), 2);
    }
}
