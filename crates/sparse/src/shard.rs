//! Domain-decomposed (sharded) view of the global system: the distributed
//! CSR layout, the halo-exchange plan, and the channel-based communication
//! substrate the sharded solver loops run on.
//!
//! The paper's evaluation runs on 256–2,048 MPI ranks; this module makes
//! that decomposition *real* inside one process.  [`ShardLayout`] extends
//! [`BlockRowPartition`](crate::partition::BlockRowPartition) from a
//! byte-accounting description into an executable layout: the global rows
//! are grouped into fixed *reduction blocks* of [`REDUCE_BLOCK`] rows and
//! whole blocks are dealt to shards, so every shard boundary is a block
//! boundary.  [`partition_csr`] then carves the global matrix into one
//! [`ShardedCsr`] per shard — the locally owned rows with columns remapped
//! into `[owned | halo]` extended-vector coordinates — plus a [`HaloPlan`]
//! describing exactly which owned entries each peer needs.
//!
//! # Determinism contract
//!
//! Residual traces and converged solutions must be **bit-identical across
//! shard counts** (and trivially across `LCR_NUM_THREADS`, which the shard
//! loops never consult).  Two structural properties deliver that:
//!
//! 1. **Row-local products.**  The local CSR keeps the global entry
//!    storage order; only column *indices* are remapped.  Every per-row
//!    sum in [`ShardedCsr::spmv_seq`] therefore traverses the same values
//!    in the same order at any shard count, and halo values are exact
//!    copies of their owners, so `y = A x` is reproduced bit-for-bit.
//! 2. **Blockwise two-phase reductions.**  A global dot product is never
//!    formed by pre-summing a shard's rows (shard-sized fold trees would
//!    differ across shard counts).  Instead every shard emits one partial
//!    *per reduction block* — a pure function of the block's contents —
//!    and the coordinator concatenates the shard vectors in shard order
//!    (equal to ascending global block order, because shards own
//!    contiguous block ranges) and folds them sequentially.  The fold
//!    sequence is identical for 1, 2 or 4 shards.
//!
//! The exchange itself runs over per-pair `std::sync::mpsc` channels with
//! a fixed gather order (ascending peer rank), so message contents are
//! deterministic regardless of thread scheduling.  Under the `racecheck`
//! feature every halo receive range is claimed in a
//! [`ClaimSet`](rayon::racecheck::ClaimSet), catching overlapping or
//! out-of-bounds scatter targets at runtime.

use crate::partition::BlockRowPartition;
use crate::{simd, CsrMatrix, Vector};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Rows per reduction block: the unit of the deterministic two-phase
/// global reduction, and the alignment of every shard boundary.
pub const REDUCE_BLOCK: usize = 1024;

// ---------------------------------------------------------------------------
// Layout
// ---------------------------------------------------------------------------

/// Block-aligned assignment of global rows to shards.
///
/// The `n` global rows form `ceil(n / block)` reduction blocks; whole
/// blocks are distributed over shards via [`BlockRowPartition`] (first
/// `nblocks % shards` shards get one extra block), so every shard owns a
/// contiguous, block-aligned row range.  Shards beyond the block count own
/// zero rows but still participate in every reduction and barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLayout {
    n: usize,
    block: usize,
    blocks: BlockRowPartition,
}

impl ShardLayout {
    /// Creates a layout of `n` rows over `shards` shards with the default
    /// [`REDUCE_BLOCK`] reduction-block size.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(n: usize, shards: usize) -> Self {
        Self::with_block(n, shards, REDUCE_BLOCK)
    }

    /// Creates a layout with an explicit reduction-block size.  Traces are
    /// bit-identical across shard counts only for a *fixed* block size;
    /// tests use small blocks so that tiny systems still span shards.
    ///
    /// # Panics
    /// Panics if `shards == 0` or `block == 0`.
    pub fn with_block(n: usize, shards: usize, block: usize) -> Self {
        assert!(shards > 0, "layout requires at least one shard");
        assert!(block > 0, "reduction block must be non-empty");
        let nblocks = n.div_ceil(block);
        ShardLayout {
            n,
            block,
            blocks: BlockRowPartition::new(nblocks, shards),
        }
    }

    /// Total number of rows.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.blocks.ranks()
    }

    /// Reduction-block size in rows.
    pub fn block(&self) -> usize {
        self.block
    }

    /// The `[start, end)` global row range owned by `shard`.
    ///
    /// # Panics
    /// Panics if `shard >= shards`.
    pub fn range(&self, shard: usize) -> (usize, usize) {
        let r = self.blocks.range(shard);
        (
            (r.start * self.block).min(self.n),
            (r.end * self.block).min(self.n),
        )
    }

    /// Number of rows owned by `shard`.
    pub fn rows(&self, shard: usize) -> usize {
        let (s, e) = self.range(shard);
        e - s
    }

    /// The shard owning global row `row` (closed-form via the block
    /// partition's O(1) owner computation).
    ///
    /// # Panics
    /// Panics if `row >= n`.
    pub fn owner(&self, row: usize) -> usize {
        assert!(row < self.n, "row out of range");
        self.blocks.owner(row / self.block)
    }

    /// Iterates the reduction-block sub-ranges of `shard`'s local rows, as
    /// `(start, end)` offsets *relative to the shard's first row*.  The
    /// shard start is block-aligned, so local blocks coincide with global
    /// blocks — the invariant the two-phase reduction rests on.
    pub fn local_block_ranges(&self, shard: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let len = self.rows(shard);
        let block = self.block;
        (0..len.div_ceil(block)).map(move |k| (k * block, ((k + 1) * block).min(len)))
    }

    /// Per-reduction-block partials of `a · b` over one shard's local rows
    /// (phase one of the deterministic two-phase reduction).
    ///
    /// # Panics
    /// Panics if the slices are not exactly the shard's local length.
    pub fn block_dot(&self, shard: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        assert_eq!(a.len(), self.rows(shard), "block_dot: a length");
        assert_eq!(b.len(), self.rows(shard), "block_dot: b length");
        self.local_block_ranges(shard)
            .map(|(s, e)| simd::dot(&a[s..e], &b[s..e]))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Distributed CSR view
// ---------------------------------------------------------------------------

/// The halo-exchange plan of one shard: which off-shard columns its rows
/// read (receive side) and which of its owned entries every peer reads
/// (send side).
#[derive(Debug, Clone, PartialEq)]
pub struct HaloPlan {
    /// Global column indices this shard reads but does not own, sorted
    /// ascending.  Because owners hold contiguous ranges, the columns of
    /// one owner form one contiguous run of this list.
    pub halo_cols: Vec<usize>,
    /// Per peer shard: the `[start, end)` slice of the halo buffer filled
    /// by that peer's message (empty for peers contributing nothing, and
    /// always empty for the shard itself).
    pub recv_ranges: Vec<(usize, usize)>,
    /// Per peer shard: the local row offsets (relative to this shard's
    /// first row) whose values must be sent to that peer, in the peer's
    /// receive order (ascending global index).
    pub send_rows: Vec<Vec<usize>>,
}

impl HaloPlan {
    /// Number of halo (ghost) values this shard receives per exchange.
    pub fn halo_len(&self) -> usize {
        self.halo_cols.len()
    }

    /// Number of owned values this shard sends per exchange.
    pub fn send_len(&self) -> usize {
        self.send_rows.iter().map(Vec::len).sum()
    }

    /// Validates the receive side of the plan: ranges must be in-bounds,
    /// mutually disjoint and cover the halo buffer exactly.  Runs the same
    /// [`ClaimSet`](rayon::racecheck::ClaimSet) discipline as the fused
    /// kernels, so under the `racecheck` feature an overlapping or
    /// out-of-bounds range panics with the claim diagnostics.
    ///
    /// # Panics
    /// Panics if the ranges overlap, run out of bounds, or leave gaps.
    pub fn validate(&self) {
        let claims = rayon::racecheck::ClaimSet::new(self.halo_len());
        let mut covered = 0usize;
        for &(s, e) in &self.recv_ranges {
            assert!(s <= e && e <= self.halo_len(), "halo recv range bounds");
            if s != e {
                claims.claim(s, e);
                covered += e - s;
            }
        }
        assert_eq!(covered, self.halo_len(), "halo recv ranges must cover the buffer");
    }
}

/// One shard's view of the global matrix: the locally owned rows stored as
/// a CSR whose columns are remapped into extended-vector coordinates —
/// `0..rows` are the shard's own rows, `rows..rows + halo_len` are the
/// sorted halo columns.  Entry storage order is exactly the global
/// matrix's, which is what makes local products bit-identical at any
/// shard count.
#[derive(Debug, Clone)]
pub struct ShardedCsr {
    /// The layout this view was carved from.
    pub layout: ShardLayout,
    /// This shard's rank.
    pub shard: usize,
    /// First global row owned by this shard.
    pub row_start: usize,
    /// Local rows with columns remapped to `[owned | halo]` coordinates
    /// (`ncols == rows + halo_len`).
    pub local: CsrMatrix,
    /// The halo-exchange plan.
    pub halo: HaloPlan,
}

impl ShardedCsr {
    /// Number of locally owned rows.
    pub fn rows(&self) -> usize {
        self.local.nrows()
    }

    /// Length of the extended vector (`rows + halo_len`).
    pub fn ext_len(&self) -> usize {
        self.local.ncols()
    }

    /// Sequential local product `y = A_local · x_ext` traversing every
    /// row's entries in global storage order — the carried-start traversal
    /// whose per-row sums are identical at any shard count.  The shard
    /// loops are the unit of parallelism here; no pool is consulted.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn spmv_seq(&self, x_ext: &[f64], y: &mut [f64]) {
        assert_eq!(x_ext.len(), self.ext_len(), "spmv_seq: x length");
        assert_eq!(y.len(), self.rows(), "spmv_seq: y length");
        let indptr = self.local.indptr();
        let indices = self.local.indices();
        let values = self.local.values();
        for (i, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in indptr[i]..indptr[i + 1] {
                acc += values[k] * x_ext[indices[k]];
            }
            *out = acc;
        }
    }

    /// The local diagonal `a_ii` of the owned rows (extended column `i`
    /// *is* global column `row_start + i`).
    pub fn diagonal_local(&self) -> Vec<f64> {
        let indptr = self.local.indptr();
        let indices = self.local.indices();
        let values = self.local.values();
        (0..self.rows())
            .map(|i| {
                (indptr[i]..indptr[i + 1])
                    .find(|&k| indices[k] == i)
                    .map_or(0.0, |k| values[k])
            })
            .collect()
    }
}

/// Carves the global square matrix into one [`ShardedCsr`] per shard of
/// `layout`, building the halo column maps and the matching send lists.
///
/// # Panics
/// Panics if `a` is not square or its dimension differs from `layout.n()`.
pub fn partition_csr(a: &CsrMatrix, layout: &ShardLayout) -> Vec<ShardedCsr> {
    assert_eq!(a.nrows(), a.ncols(), "sharding requires a square matrix");
    assert_eq!(a.nrows(), layout.n(), "layout dimension mismatch");
    let shards = layout.shards();
    let indptr = a.indptr();
    let indices = a.indices();
    let values = a.values();

    // Pass 1: local CSR + receive side of every halo plan.
    let mut parts: Vec<ShardedCsr> = (0..shards)
        .map(|s| {
            let (r0, r1) = layout.range(s);
            let rows = r1 - r0;
            // Sorted, deduplicated off-shard columns.
            let mut halo_cols: Vec<usize> = indices[indptr[r0]..indptr[r1]]
                .iter()
                .copied()
                .filter(|&c| c < r0 || c >= r1)
                .collect();
            halo_cols.sort_unstable();
            halo_cols.dedup();
            // Owners hold contiguous global ranges, so each owner's halo
            // columns form one contiguous run of the sorted list.
            let mut recv_ranges = vec![(0usize, 0usize); shards];
            let mut lo = 0;
            while lo < halo_cols.len() {
                let owner = layout.owner(halo_cols[lo]);
                let (_, owner_end) = layout.range(owner);
                let hi = halo_cols[lo..].partition_point(|&c| c < owner_end) + lo;
                recv_ranges[owner] = (lo, hi);
                lo = hi;
            }
            // Remap columns: owned -> c - r0, halo -> rows + slot.
            let mut l_indptr = Vec::with_capacity(rows + 1);
            l_indptr.push(0usize);
            let nnz = indptr[r1] - indptr[r0];
            let mut l_indices = Vec::with_capacity(nnz);
            let mut l_values = Vec::with_capacity(nnz);
            for row in r0..r1 {
                for k in indptr[row]..indptr[row + 1] {
                    let c = indices[k];
                    let lc = if c >= r0 && c < r1 {
                        c - r0
                    } else {
                        rows + halo_cols.binary_search(&c).expect("halo column indexed")
                    };
                    l_indices.push(lc);
                    l_values.push(values[k]);
                }
                l_indptr.push(l_indices.len());
            }
            let ncols = rows + halo_cols.len();
            let local = CsrMatrix::from_raw_unchecked(rows, ncols, l_indptr, l_indices, l_values);
            ShardedCsr {
                layout: layout.clone(),
                shard: s,
                row_start: r0,
                local,
                halo: HaloPlan {
                    halo_cols,
                    recv_ranges,
                    send_rows: vec![Vec::new(); shards],
                },
            }
        })
        .collect();

    // Pass 2: derive each shard's send lists from its peers' halo columns.
    for receiver in 0..shards {
        let halo_cols = parts[receiver].halo.halo_cols.clone();
        for (owner, &(lo, hi)) in parts[receiver].halo.recv_ranges.clone().iter().enumerate() {
            if lo == hi {
                continue;
            }
            let (o0, _) = layout.range(owner);
            let rows: Vec<usize> = halo_cols[lo..hi].iter().map(|&c| c - o0).collect();
            parts[owner].halo.send_rows[receiver] = rows;
        }
    }
    for part in &parts {
        part.halo.validate();
    }
    parts
}

/// Gathers per-shard local solution slices back into one global vector,
/// in shard order.
pub fn gather_solution(layout: &ShardLayout, locals: &[Vec<f64>]) -> Vector {
    assert_eq!(locals.len(), layout.shards(), "one slice per shard");
    let mut out = Vec::with_capacity(layout.n());
    for (s, local) in locals.iter().enumerate() {
        assert_eq!(local.len(), layout.rows(s), "local slice length");
        out.extend_from_slice(local);
    }
    Vector::from_vec(out)
}

// ---------------------------------------------------------------------------
// Communication substrate
// ---------------------------------------------------------------------------

/// A typed communication failure in the sharded protocol.
///
/// Every supervised failure mode — peer stall, dropped message, dead
/// coordinator, coordinated abort — surfaces as one of these instead of a
/// panic or a hang, so a faulted run always ends in a *typed* error the
/// caller can classify (the safety invariant of the chaos soak).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A halo receive from `peer` did not arrive within the timeout.
    PeerTimeout {
        /// The waiting shard.
        shard: usize,
        /// The peer whose message never came.
        peer: usize,
    },
    /// A halo channel to/from `peer` disconnected (the peer exited).
    PeerClosed {
        /// The shard observing the disconnect.
        shard: usize,
        /// The disconnected peer.
        peer: usize,
    },
    /// The coordinator's request/reply channel is gone.
    CoordinatorGone {
        /// The shard observing the disconnect.
        shard: usize,
    },
    /// The coordinator aborted the round (another shard stalled, failed,
    /// or broke lockstep) and this shard must unwind.
    Aborted {
        /// The aborted shard.
        shard: usize,
    },
    /// The coordinator detected a stall: no request arrived within the
    /// heartbeat timeout while these shards still owed one.
    Stalled {
        /// Live shards that never sent their round request.
        waiting_on: Vec<usize>,
    },
    /// The lockstep protocol was violated (mixed round / wrong reply).
    Protocol(String),
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PeerTimeout { shard, peer } => {
                write!(f, "shard {shard}: halo receive from peer {peer} timed out")
            }
            CommError::PeerClosed { shard, peer } => {
                write!(f, "shard {shard}: peer {peer} disconnected")
            }
            CommError::CoordinatorGone { shard } => {
                write!(f, "shard {shard}: coordinator disconnected")
            }
            CommError::Aborted { shard } => {
                write!(f, "shard {shard}: round aborted by the coordinator")
            }
            CommError::Stalled { waiting_on } => {
                write!(f, "coordinator: stall detected waiting on shards {waiting_on:?}")
            }
            CommError::Protocol(msg) => write!(f, "sharded protocol desync: {msg}"),
        }
    }
}

impl std::error::Error for CommError {}

/// What an interposer decides about one outbound halo message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommAction {
    /// Deliver the message normally.
    Deliver,
    /// Silently drop it — the receiving peer's timeout turns the loss
    /// into a typed [`CommError::PeerTimeout`].
    Drop,
}

/// Hook invoked before every outbound halo message — the seam the chaos
/// engine injects message delay, drop, and peer stall through.  An
/// implementation may sleep before returning (delay/stall) and decides
/// per message whether it is delivered.  The production path has no
/// interposer and pays nothing.
pub trait CommInterposer: Send {
    /// Called before halo message number `seq` (per sending endpoint,
    /// 0-based) from `from` to `to`.
    fn on_halo_send(&mut self, from: usize, to: usize, seq: u64) -> CommAction;
}

/// A request from one shard to the coordinator.  Lockstep execution
/// guarantees every live shard issues the *same* variant each round.
enum Request {
    /// Phase-one partials of a batched reduction: one inner vector per
    /// reduced quantity, each holding this shard's per-block partials.
    Reduce { shard: usize, partials: Vec<Vec<f64>> },
    /// An all-ok barrier vote (epoch commit, recovery synchronisation).
    Barrier { shard: usize, ok: bool },
    /// The shard's solver loop has finished.
    Done { shard: usize },
}

impl Request {
    fn shard(&self) -> usize {
        match *self {
            Request::Reduce { shard, .. }
            | Request::Barrier { shard, .. }
            | Request::Done { shard } => shard,
        }
    }
}

/// A coordinator reply broadcast to every live shard.
#[derive(Clone)]
enum Reply {
    /// One reduced scalar per quantity.
    Reduced(Vec<f64>),
    /// Conjunction of the barrier votes.
    Barrier(bool),
    /// The round cannot complete (a peer stalled, failed, or broke
    /// lockstep): unwind with a typed error.
    Abort,
}

/// One shard's endpoint of the communication substrate: direct per-pair
/// channels for halo exchange plus a request/reply pair to the
/// [`ShardCoordinator`] for reductions and barriers.
pub struct ShardComm {
    shard: usize,
    shards: usize,
    to_coord: Sender<Request>,
    from_coord: Receiver<Reply>,
    halo_tx: Vec<Option<Sender<Vec<f64>>>>,
    halo_rx: Vec<Option<Receiver<Vec<f64>>>>,
    halo_doubles: u64,
    reduce_rounds: u64,
    halo_msgs: u64,
    timeout: Option<Duration>,
    interposer: Option<Box<dyn CommInterposer>>,
}

impl ShardComm {
    /// This endpoint's shard rank.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Number of shards in the run.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total `f64` values this shard has sent in halo messages.
    pub fn halo_doubles_sent(&self) -> u64 {
        self.halo_doubles
    }

    /// Number of reduction rounds this shard has participated in.
    pub fn reduce_rounds(&self) -> u64 {
        self.reduce_rounds
    }

    /// Sets the halo-receive timeout.  `None` (the default) waits
    /// forever — the pre-supervision behaviour; with a timeout a stalled
    /// or dropped peer message becomes [`CommError::PeerTimeout`] instead
    /// of a hang.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }

    /// Installs a [`CommInterposer`] on this endpoint's outbound halo
    /// messages (the chaos-injection seam).
    pub fn set_interposer(&mut self, interposer: Box<dyn CommInterposer>) {
        self.interposer = Some(interposer);
    }

    /// One deterministic halo exchange: scatters `owned` values to every
    /// peer per `plan.send_rows`, then gathers peer messages into `halo`
    /// in ascending peer order.  Receive ranges are claimed in a
    /// [`ClaimSet`](rayon::racecheck::ClaimSet) so the `racecheck` feature
    /// verifies disjointness and bounds on every exchange.
    ///
    /// # Errors
    /// [`CommError::PeerClosed`] if a peer endpoint is gone,
    /// [`CommError::PeerTimeout`] if a receive exceeds the configured
    /// timeout.
    ///
    /// # Panics
    /// Panics on plan/buffer length mismatch.
    pub fn try_halo_exchange(
        &mut self,
        plan: &HaloPlan,
        owned: &[f64],
        halo: &mut [f64],
    ) -> Result<(), CommError> {
        assert_eq!(halo.len(), plan.halo_len(), "halo buffer length");
        let claims = rayon::racecheck::ClaimSet::new(halo.len());
        for (peer, rows) in plan.send_rows.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let seq = self.halo_msgs;
            self.halo_msgs += 1;
            if let Some(interposer) = self.interposer.as_mut() {
                if interposer.on_halo_send(self.shard, peer, seq) == CommAction::Drop {
                    continue;
                }
            }
            let msg: Vec<f64> = rows.iter().map(|&i| owned[i]).collect();
            self.halo_doubles += msg.len() as u64;
            if self.halo_tx[peer]
                .as_ref()
                .expect("send list targets a peer channel")
                .send(msg)
                .is_err()
            {
                return Err(CommError::PeerClosed {
                    shard: self.shard,
                    peer,
                });
            }
        }
        for (peer, &(s, e)) in plan.recv_ranges.iter().enumerate() {
            if s == e {
                continue;
            }
            claims.claim(s, e);
            let rx = self.halo_rx[peer]
                .as_ref()
                .expect("recv range names a peer channel");
            let msg = match self.timeout {
                None => rx.recv().map_err(|_| CommError::PeerClosed {
                    shard: self.shard,
                    peer,
                })?,
                Some(t) => rx.recv_timeout(t).map_err(|e| match e {
                    RecvTimeoutError::Timeout => CommError::PeerTimeout {
                        shard: self.shard,
                        peer,
                    },
                    RecvTimeoutError::Disconnected => CommError::PeerClosed {
                        shard: self.shard,
                        peer,
                    },
                })?,
            };
            assert_eq!(msg.len(), e - s, "halo message length mismatch");
            halo[s..e].copy_from_slice(&msg);
        }
        Ok(())
    }

    /// Infallible [`ShardComm::try_halo_exchange`] for callers outside the
    /// supervised path.
    ///
    /// # Panics
    /// Panics on any communication failure.
    pub fn halo_exchange(&mut self, plan: &HaloPlan, owned: &[f64], halo: &mut [f64]) {
        if let Err(e) = self.try_halo_exchange(plan, owned, halo) {
            panic!("{e}");
        }
    }

    fn recv_reply(&mut self) -> Result<Reply, CommError> {
        self.from_coord.recv().map_err(|_| CommError::CoordinatorGone {
            shard: self.shard,
        })
    }

    /// Phase two of the deterministic reduction: submits this shard's
    /// per-block partials (one inner vector per quantity) and blocks until
    /// the coordinator returns the globally folded scalars.
    ///
    /// # Errors
    /// [`CommError::CoordinatorGone`] if the coordinator is gone,
    /// [`CommError::Aborted`] if it aborted the round, or
    /// [`CommError::Protocol`] on a desynchronized reply.
    pub fn try_reduce(&mut self, partials: Vec<Vec<f64>>) -> Result<Vec<f64>, CommError> {
        self.reduce_rounds += 1;
        self.to_coord
            .send(Request::Reduce {
                shard: self.shard,
                partials,
            })
            .map_err(|_| CommError::CoordinatorGone { shard: self.shard })?;
        match self.recv_reply()? {
            Reply::Reduced(v) => Ok(v),
            Reply::Abort => Err(CommError::Aborted { shard: self.shard }),
            Reply::Barrier(_) => Err(CommError::Protocol(
                "expected reduction reply, got barrier".into(),
            )),
        }
    }

    /// Infallible [`ShardComm::try_reduce`].
    ///
    /// # Panics
    /// Panics on any communication failure.
    pub fn reduce(&mut self, partials: Vec<Vec<f64>>) -> Vec<f64> {
        match self.try_reduce(partials) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// All-ok barrier: blocks until every shard has voted and returns the
    /// conjunction (the epoch-commit rule: an epoch is recoverable only
    /// when *all* shard segments landed).
    ///
    /// # Errors
    /// Same contract as [`ShardComm::try_reduce`].
    pub fn try_barrier_all_ok(&mut self, ok: bool) -> Result<bool, CommError> {
        self.to_coord
            .send(Request::Barrier {
                shard: self.shard,
                ok,
            })
            .map_err(|_| CommError::CoordinatorGone { shard: self.shard })?;
        match self.recv_reply()? {
            Reply::Barrier(all_ok) => Ok(all_ok),
            Reply::Abort => Err(CommError::Aborted { shard: self.shard }),
            Reply::Reduced(_) => Err(CommError::Protocol(
                "expected barrier reply, got reduction".into(),
            )),
        }
    }

    /// Infallible [`ShardComm::try_barrier_all_ok`].
    ///
    /// # Panics
    /// Panics on any communication failure.
    pub fn barrier_all_ok(&mut self, ok: bool) -> bool {
        match self.try_barrier_all_ok(ok) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Announces this shard's completion and consumes the endpoint.
    pub fn finish(self) {
        // The coordinator exits once every shard reports done; a shard
        // racing ahead of a coordinator that already shut down is fine.
        let _ = self.to_coord.send(Request::Done { shard: self.shard });
    }
}

/// The reduction/barrier coordinator: runs on the executor thread,
/// servicing lockstep rounds until every shard reports done.
pub struct ShardCoordinator {
    shards: usize,
    rx: Receiver<Request>,
    tx: Vec<Sender<Reply>>,
    timeout: Option<Duration>,
}

impl ShardCoordinator {
    /// Sets the heartbeat timeout for stall detection: if a round stays
    /// incomplete for this long, the coordinator declares the missing
    /// shards stalled, aborts every waiting shard, drains the rest and
    /// returns [`CommError::Stalled`] from
    /// [`try_serve`](ShardCoordinator::try_serve).  `None` (the default)
    /// waits forever — the pre-supervision behaviour where only an
    /// explicit kill was detectable.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }

    /// Services rounds until every shard has sent [`ShardComm::finish`].
    ///
    /// # Panics
    /// Panics on any supervised failure ([`ShardCoordinator::try_serve`]
    /// is the non-panicking form).
    pub fn serve(&mut self) {
        if let Err(e) = self.try_serve() {
            panic!("{e}");
        }
    }

    /// Services rounds until every shard has sent [`ShardComm::finish`],
    /// with supervision.
    ///
    /// Each round collects exactly one request per live shard, requires
    /// them to be the same variant (the solver loops run in lockstep),
    /// folds reduction partials in shard order — ascending global block
    /// order — and broadcasts the reply.
    ///
    /// Supervision departs from the strict lockstep in two ways.  If a
    /// round stays incomplete past the heartbeat timeout, the missing
    /// shards are declared stalled ([`CommError::Stalled`]).  If `Done`
    /// arrives mixed into a reduce/barrier round — a shard unwound with
    /// an error while its peers kept computing — the round can never
    /// complete and is aborted.  In both cases every waiting shard
    /// receives an abort reply (so it unwinds with
    /// [`CommError::Aborted`] instead of hanging), remaining requests are
    /// drained until all shards finished, and the first failure is
    /// returned — shards are always joinable afterwards.
    ///
    /// # Errors
    /// [`CommError::Stalled`] on heartbeat expiry,
    /// [`CommError::Aborted`] when lockstep broke,
    /// [`CommError::CoordinatorGone`] if a shard endpoint vanished
    /// mid-round, [`CommError::Protocol`] on a duplicate or mixed
    /// non-`Done` request.
    pub fn try_serve(&mut self) -> Result<(), CommError> {
        let mut done = vec![false; self.shards];
        let mut live = self.shards;
        while live > 0 {
            let mut slots: Vec<Option<Request>> = (0..self.shards).map(|_| None).collect();
            let round = live;
            for _ in 0..round {
                let req = match self.recv_request() {
                    Ok(req) => req,
                    Err(e) => {
                        // Stall or disconnect mid-round: abort everyone
                        // already waiting for a reply, then drain.
                        let waiting: Vec<usize> = slots
                            .iter()
                            .enumerate()
                            .filter_map(|(s, r)| r.as_ref().map(|_| s))
                            .collect();
                        let err = match e {
                            RecvTimeoutError::Timeout => CommError::Stalled {
                                waiting_on: (0..self.shards)
                                    .filter(|&s| !done[s] && slots[s].is_none())
                                    .collect(),
                            },
                            RecvTimeoutError::Disconnected => {
                                CommError::CoordinatorGone { shard: usize::MAX }
                            }
                        };
                        consume_done_slots(&slots, &mut done, &mut live);
                        self.abort_and_drain(waiting, &mut done, &mut live);
                        return Err(err);
                    }
                };
                let s = req.shard();
                if done[s] || slots[s].is_some() {
                    return Err(CommError::Protocol(format!(
                        "duplicate request from shard {s}"
                    )));
                }
                slots[s] = Some(req);
            }
            let requests: Vec<(usize, Request)> = slots
                .into_iter()
                .enumerate()
                .filter_map(|(s, r)| r.map(|r| (s, r)))
                .collect();
            let n_done = requests
                .iter()
                .filter(|(_, r)| matches!(r, Request::Done { .. }))
                .count();
            if n_done > 0 {
                // Every Done shard is finished for good; if anything else
                // is in the round, lockstep broke (a shard erred out early)
                // and the survivors must unwind.
                let mut waiting = Vec::new();
                for (s, req) in &requests {
                    if matches!(req, Request::Done { .. }) {
                        done[*s] = true;
                        live -= 1;
                    } else {
                        waiting.push(*s);
                    }
                }
                if !waiting.is_empty() {
                    self.abort_and_drain(waiting.clone(), &mut done, &mut live);
                    return Err(CommError::Aborted {
                        shard: waiting[0],
                    });
                }
                continue;
            }
            match requests.first() {
                Some((_, Request::Reduce { .. })) => {
                    let nq = match &requests[0].1 {
                        Request::Reduce { partials, .. } => partials.len(),
                        _ => unreachable!(),
                    };
                    let mut scalars = vec![0.0f64; nq];
                    // Shard order == ascending global block order: the
                    // fold sequence is independent of the shard count.
                    for (_, req) in &requests {
                        let Request::Reduce { partials, .. } = req else {
                            return Err(CommError::Protocol("mixed reduce round".into()));
                        };
                        assert_eq!(partials.len(), nq, "reduction quantity count");
                        for (q, blocks) in partials.iter().enumerate() {
                            for &p in blocks {
                                scalars[q] += p;
                            }
                        }
                    }
                    for (s, _) in &requests {
                        let _ = self.tx[*s].send(Reply::Reduced(scalars.clone()));
                    }
                }
                Some((_, Request::Barrier { .. })) => {
                    let mut all_ok = true;
                    for (_, req) in &requests {
                        let Request::Barrier { ok, .. } = req else {
                            return Err(CommError::Protocol("mixed barrier round".into()));
                        };
                        all_ok &= ok;
                    }
                    for (s, _) in &requests {
                        let _ = self.tx[*s].send(Reply::Barrier(all_ok));
                    }
                }
                _ => unreachable!("done rounds handled above; rounds are never empty"),
            }
        }
        Ok(())
    }

    fn recv_request(&mut self) -> Result<Request, RecvTimeoutError> {
        match self.timeout {
            None => self
                .rx
                .recv()
                .map_err(|_| RecvTimeoutError::Disconnected),
            Some(t) => self.rx.recv_timeout(t),
        }
    }

    /// Sends [`Reply::Abort`] to every shard in `waiting`, then keeps
    /// servicing requests — replying abort to everything but `Done` —
    /// until every live shard has finished, so the executor can always
    /// join its shard threads.
    fn abort_and_drain(&mut self, waiting: Vec<usize>, done: &mut [bool], live: &mut usize) {
        for s in waiting {
            let _ = self.tx[s].send(Reply::Abort);
        }
        while *live > 0 {
            let req = match self.recv_request() {
                Ok(req) => req,
                // Disconnect means every endpoint is gone — nothing left
                // to join.  A timeout here means a shard is still stalled;
                // keep waiting (its own halo timeout bounds the stall) so
                // the join below cannot deadlock while endpoints exist.
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            };
            match req {
                Request::Done { shard } => {
                    if !done[shard] {
                        done[shard] = true;
                        *live -= 1;
                    }
                }
                other => {
                    let _ = self.tx[other.shard()].send(Reply::Abort);
                }
            }
        }
    }
}

/// Helper for the mid-round failure path: consumes any `Done` requests
/// already collected in `slots` — those shards are finished and must not
/// be waited for during the drain.
fn consume_done_slots(slots: &[Option<Request>], done: &mut [bool], live: &mut usize) {
    for (s, slot) in slots.iter().enumerate() {
        if let Some(Request::Done { .. }) = slot {
            if !done[s] {
                done[s] = true;
                *live -= 1;
            }
        }
    }
}

/// Builds the communication substrate for `shards` shards: one
/// [`ShardComm`] endpoint per shard plus the [`ShardCoordinator`] the
/// executor thread must [`serve`](ShardCoordinator::serve).
pub fn build_comms(shards: usize) -> (Vec<ShardComm>, ShardCoordinator) {
    assert!(shards > 0, "at least one shard");
    let (req_tx, req_rx) = channel::<Request>();
    let mut reply_tx = Vec::with_capacity(shards);
    let mut reply_rx = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = channel::<Reply>();
        reply_tx.push(tx);
        reply_rx.push(rx);
    }
    // Per-ordered-pair halo channels: halo[(from, to)].
    let mut halo_tx: Vec<Vec<Option<Sender<Vec<f64>>>>> =
        (0..shards).map(|_| (0..shards).map(|_| None).collect()).collect();
    let mut halo_rx: Vec<Vec<Option<Receiver<Vec<f64>>>>> =
        (0..shards).map(|_| (0..shards).map(|_| None).collect()).collect();
    for from in 0..shards {
        for to in 0..shards {
            if from == to {
                continue;
            }
            let (tx, rx) = channel::<Vec<f64>>();
            halo_tx[from][to] = Some(tx);
            halo_rx[to][from] = Some(rx);
        }
    }
    let comms = reply_rx
        .into_iter()
        .zip(halo_tx)
        .zip(halo_rx)
        .enumerate()
        .map(|(shard, ((from_coord, tx), rx))| ShardComm {
            shard,
            shards,
            to_coord: req_tx.clone(),
            from_coord,
            halo_tx: tx,
            halo_rx: rx,
            halo_doubles: 0,
            reduce_rounds: 0,
            halo_msgs: 0,
            timeout: None,
            interposer: None,
        })
        .collect();
    let coordinator = ShardCoordinator {
        shards,
        rx: req_rx,
        tx: reply_tx,
        timeout: None,
    };
    (comms, coordinator)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::poisson3d;

    #[test]
    fn layout_is_block_aligned_and_covers_all_rows() {
        let l = ShardLayout::with_block(1000, 3, 64);
        let mut end = 0;
        for s in 0..3 {
            let (a, b) = l.range(s);
            assert_eq!(a, end, "contiguous coverage");
            assert!(a.is_multiple_of(64), "block-aligned start");
            end = b;
        }
        assert_eq!(end, 1000);
        for row in [0, 63, 64, 500, 999] {
            let o = l.owner(row);
            let (a, b) = l.range(o);
            assert!(row >= a && row < b, "owner({row}) = {o}");
        }
    }

    #[test]
    fn layout_tolerates_more_shards_than_blocks() {
        let l = ShardLayout::with_block(100, 4, 64);
        // Two blocks over four shards: the last two shards are empty.
        assert_eq!(l.rows(0) + l.rows(1) + l.rows(2) + l.rows(3), 100);
        assert_eq!(l.rows(3), 0);
        assert_eq!(l.block_dot(3, &[], &[]), Vec::<f64>::new());
    }

    #[test]
    fn block_dot_is_shard_count_invariant() {
        let n = 1000;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let fold = |shards: usize| -> f64 {
            let l = ShardLayout::with_block(n, shards, 64);
            let mut acc = 0.0;
            for s in 0..shards {
                let (a, b) = l.range(s);
                for p in l.block_dot(s, &x[a..b], &y[a..b]) {
                    acc += p;
                }
            }
            acc
        };
        let one = fold(1);
        for shards in [2, 3, 4, 7] {
            assert_eq!(one.to_bits(), fold(shards).to_bits(), "shards = {shards}");
        }
    }

    #[test]
    fn partitioned_spmv_matches_global_bitwise() {
        let a = poisson3d(8); // 512 rows
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut y_global = vec![0.0; n];
        // Reference: the same carried-start traversal on the global matrix.
        let (ip, ix, vs) = (a.indptr(), a.indices(), a.values());
        for i in 0..n {
            let mut acc = 0.0;
            for k in ip[i]..ip[i + 1] {
                acc += vs[k] * x[ix[k]];
            }
            y_global[i] = acc;
        }
        for shards in [1, 2, 3, 4] {
            let layout = ShardLayout::with_block(n, shards, 64);
            let parts = partition_csr(&a, &layout);
            for part in &parts {
                let (r0, r1) = layout.range(part.shard);
                // Assemble the extended vector by hand (exact halo copies).
                let mut x_ext = x[r0..r1].to_vec();
                x_ext.extend(part.halo.halo_cols.iter().map(|&c| x[c]));
                let mut y = vec![0.0; part.rows()];
                part.spmv_seq(&x_ext, &mut y);
                for (i, &v) in y.iter().enumerate() {
                    assert_eq!(
                        v.to_bits(),
                        y_global[r0 + i].to_bits(),
                        "row {} at {shards} shards",
                        r0 + i
                    );
                }
            }
        }
    }

    #[test]
    fn halo_plans_are_mutually_consistent() {
        let a = poisson3d(6);
        let layout = ShardLayout::with_block(a.nrows(), 3, 32);
        let parts = partition_csr(&a, &layout);
        for part in &parts {
            part.halo.validate();
            for (peer, rows) in part.halo.send_rows.iter().enumerate() {
                let (lo, hi) = parts[peer].halo.recv_ranges[part.shard];
                assert_eq!(rows.len(), hi - lo, "send/recv symmetry");
                // The values sent are exactly the peer's halo columns.
                let (r0, _) = layout.range(part.shard);
                for (k, &local) in rows.iter().enumerate() {
                    assert_eq!(local + r0, parts[peer].halo.halo_cols[lo + k]);
                }
            }
        }
    }

    #[test]
    fn diagonal_local_matches_global() {
        let a = poisson3d(5);
        let diag = a.diagonal();
        let layout = ShardLayout::with_block(a.nrows(), 2, 32);
        for part in partition_csr(&a, &layout) {
            for (i, &d) in part.diagonal_local().iter().enumerate() {
                assert_eq!(d, diag.as_slice()[part.row_start + i]);
            }
        }
    }

    #[test]
    fn comm_reduce_and_barrier_roundtrip() {
        let (comms, mut coord) = build_comms(3);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut comm| {
                // lcr-analyze: allow(thread-spawn): unit test exercising the
                // coordinator protocol needs real concurrent endpoints.
                std::thread::spawn(move || {
                    let s = comm.shard() as f64;
                    let r = comm.reduce(vec![vec![s, 1.0], vec![2.0 * s]]);
                    let ok = comm.barrier_all_ok(comm.shard() != 1);
                    let all = comm.barrier_all_ok(true);
                    comm.finish();
                    (r, ok, all)
                })
            })
            .collect();
        coord.serve();
        for h in handles {
            let (r, ok, all) = h.join().unwrap();
            assert_eq!(r, vec![0.0 + 1.0 + 1.0 + 1.0 + 2.0 + 1.0, 6.0]);
            assert!(!ok, "one dissenting vote fails the barrier");
            assert!(all);
        }
    }

    #[test]
    fn coordinator_detects_a_stalled_shard_and_aborts_the_rest() {
        let (comms, mut coord) = build_comms(3);
        coord.set_timeout(Some(Duration::from_millis(50)));
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut comm| {
                // lcr-analyze: allow(thread-spawn): unit test exercising the
                // supervised coordinator needs real concurrent endpoints.
                std::thread::spawn(move || {
                    let result = if comm.shard() == 2 {
                        // Shard 2 stalls for 10x the heartbeat before ever
                        // sending its round request.
                        std::thread::sleep(Duration::from_millis(500));
                        comm.try_reduce(vec![vec![1.0]])
                    } else {
                        comm.try_reduce(vec![vec![1.0]])
                    };
                    comm.finish();
                    result
                })
            })
            .collect();
        let served = coord.try_serve();
        assert_eq!(
            served,
            Err(CommError::Stalled { waiting_on: vec![2] }),
            "heartbeat must name the stalled shard"
        );
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // The healthy shards were aborted (typed error, no hang); the
        // stalled shard's late request is aborted by the drain.
        for (s, r) in results.iter().enumerate() {
            assert!(r.is_err(), "shard {s} must surface a typed error, got {r:?}");
        }
    }

    #[test]
    fn early_shard_exit_aborts_survivors_instead_of_hanging() {
        let (comms, mut coord) = build_comms(2);
        coord.set_timeout(Some(Duration::from_millis(2000)));
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut comm| {
                // lcr-analyze: allow(thread-spawn): unit test exercising the
                // supervised coordinator needs real concurrent endpoints.
                std::thread::spawn(move || {
                    if comm.shard() == 0 {
                        // Shard 0 errors out before the round (simulating an
                        // unrecoverable local failure) and reports done.
                        comm.finish();
                        Ok(Vec::new())
                    } else {
                        let r = comm.try_reduce(vec![vec![1.0]]);
                        comm.finish();
                        r
                    }
                })
            })
            .collect();
        let served = coord.try_serve();
        assert!(served.is_err(), "mixed done round must fail the run");
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(CommError::Aborted { shard: 1 }));
    }

    #[test]
    fn dropped_halo_message_times_out_with_a_typed_error() {
        struct DropAll;
        impl CommInterposer for DropAll {
            fn on_halo_send(&mut self, _from: usize, _to: usize, _seq: u64) -> CommAction {
                CommAction::Drop
            }
        }
        let plan01 = HaloPlan {
            halo_cols: vec![1],
            recv_ranges: vec![(0, 0), (0, 1)],
            send_rows: vec![Vec::new(), vec![0]],
        };
        let plan10 = HaloPlan {
            halo_cols: vec![0],
            recv_ranges: vec![(0, 1), (0, 0)],
            send_rows: vec![vec![0], Vec::new()],
        };
        let (mut comms, mut coord) = build_comms(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        c0.set_timeout(Some(Duration::from_millis(40)));
        c1.set_timeout(Some(Duration::from_millis(40)));
        c1.set_interposer(Box::new(DropAll));
        coord.set_timeout(Some(Duration::from_millis(2000)));
        // lcr-analyze: allow(thread-spawn): unit test exercising the halo
        // timeout path needs a real concurrent peer endpoint.
        let h1 = std::thread::spawn(move || {
            let mut halo = vec![0.0; 1];
            // Shard 1 drops its outbound message but still receives fine.
            let r = c1.try_halo_exchange(&plan10, &[2.0], &mut halo);
            c1.finish();
            r
        });
        let mut halo = vec![0.0; 1];
        let r0 = c0.try_halo_exchange(&plan01, &[1.0], &mut halo);
        // Depending on timing the loss surfaces as a timeout (peer still
        // alive) or a disconnect (peer already exited) — both are typed.
        assert!(
            matches!(
                r0,
                Err(CommError::PeerTimeout { shard: 0, peer: 1 })
                    | Err(CommError::PeerClosed { shard: 0, peer: 1 })
            ),
            "dropped message must surface as a typed error, got {r0:?}"
        );
        c0.finish();
        coord.try_serve().unwrap();
        h1.join().unwrap().unwrap();
    }

    #[test]
    #[should_panic(expected = "halo recv ranges must cover the buffer")]
    fn halo_plan_gap_is_rejected() {
        let plan = HaloPlan {
            halo_cols: vec![3, 9],
            recv_ranges: vec![(0, 1), (1, 1)],
            send_rows: vec![Vec::new(), Vec::new()],
        };
        plan.validate();
    }
}
