//! Block-row partitioning of the global system across simulated ranks.
//!
//! The paper runs on 256–2,048 MPI processes, each holding a contiguous
//! block of rows of the global matrix and vectors.  This repository does
//! not run real MPI; instead the partition describes how a distributed run
//! *would* split the data, which is exactly what the checkpoint/PFS model
//! needs to compute per-rank checkpoint sizes (Table 3) and aggregate I/O
//! times (Figures 4–6).

use serde::{Deserialize, Serialize};

/// The contiguous row range owned by one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankRange {
    /// Rank id (0-based).
    pub rank: usize,
    /// First global row owned by this rank.
    pub start: usize,
    /// One past the last global row owned by this rank.
    pub end: usize,
}

impl RankRange {
    /// Number of rows owned by this rank.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the rank owns no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether the global row index belongs to this rank.
    pub fn contains(&self, row: usize) -> bool {
        row >= self.start && row < self.end
    }
}

/// A balanced block-row partition of `n` rows over `ranks` ranks: the first
/// `n % ranks` ranks get one extra row, mirroring PETSc's default layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockRowPartition {
    n: usize,
    ranks: usize,
}

impl BlockRowPartition {
    /// Creates a partition of `n` rows over `ranks` ranks.
    ///
    /// # Panics
    /// Panics if `ranks == 0`.
    pub fn new(n: usize, ranks: usize) -> Self {
        assert!(ranks > 0, "partition requires at least one rank");
        BlockRowPartition { n, ranks }
    }

    /// Total number of rows.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The row range owned by `rank`.
    ///
    /// # Panics
    /// Panics if `rank >= ranks`.
    pub fn range(&self, rank: usize) -> RankRange {
        assert!(rank < self.ranks, "rank out of range");
        let base = self.n / self.ranks;
        let extra = self.n % self.ranks;
        let start = rank * base + rank.min(extra);
        let len = base + usize::from(rank < extra);
        RankRange {
            rank,
            start,
            end: start + len,
        }
    }

    /// Iterates over all rank ranges.
    pub fn iter(&self) -> impl Iterator<Item = RankRange> + '_ {
        (0..self.ranks).map(move |r| self.range(r))
    }

    /// The rank that owns global row `row`.
    ///
    /// # Panics
    /// Panics if `row >= n`.
    pub fn owner(&self, row: usize) -> usize {
        assert!(row < self.n, "row out of range");
        let base = self.n / self.ranks;
        let extra = self.n % self.ranks;
        let boundary = extra * (base + 1);
        if row < boundary {
            row / (base + 1)
        } else {
            extra + (row - boundary) / base.max(1)
        }
    }

    /// Maximum number of rows owned by any rank (the per-rank size used for
    /// per-process checkpoint accounting).
    pub fn max_local_rows(&self) -> usize {
        self.n / self.ranks + usize::from(!self.n.is_multiple_of(self.ranks))
    }

    /// Number of bytes of a double-precision vector owned by `rank`.
    pub fn local_vector_bytes(&self, rank: usize) -> usize {
        self.range(rank).len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition() {
        let p = BlockRowPartition::new(100, 4);
        assert_eq!(p.range(0), RankRange { rank: 0, start: 0, end: 25 });
        assert_eq!(p.range(3), RankRange { rank: 3, start: 75, end: 100 });
        assert_eq!(p.max_local_rows(), 25);
        assert_eq!(p.local_vector_bytes(0), 200);
    }

    #[test]
    fn uneven_partition_covers_all_rows_exactly_once() {
        let p = BlockRowPartition::new(103, 4);
        let ranges: Vec<_> = p.iter().collect();
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0].len(), 26);
        assert_eq!(ranges[3].len(), 25);
        // Contiguous coverage.
        assert_eq!(ranges[0].start, 0);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(ranges.last().unwrap().end, 103);
        assert_eq!(p.max_local_rows(), 26);
    }

    #[test]
    fn owner_is_consistent_with_ranges() {
        let p = BlockRowPartition::new(37, 5);
        for row in 0..37 {
            let owner = p.owner(row);
            assert!(p.range(owner).contains(row), "row {row} owner {owner}");
        }
    }

    #[test]
    fn single_rank_owns_everything() {
        let p = BlockRowPartition::new(10, 1);
        assert_eq!(p.range(0).len(), 10);
        assert_eq!(p.owner(9), 0);
    }

    #[test]
    fn more_ranks_than_rows() {
        let p = BlockRowPartition::new(3, 8);
        let total: usize = p.iter().map(|r| r.len()).sum();
        assert_eq!(total, 3);
        assert!(p.range(7).is_empty());
        assert_eq!(p.owner(2), 2);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = BlockRowPartition::new(10, 0);
    }
}
