//! Poisson stencil matrix generators.
//!
//! The paper's weak-scaling evaluation solves the sparse linear system
//! arising from discretising a 3-D Poisson equation (Equation 15): a
//! block-tridiagonal matrix whose diagonal blocks are themselves
//! block-tridiagonal, bottoming out in tridiagonal blocks with `-6` on the
//! diagonal and `1` on the off-diagonals, plus identity coupling blocks.
//! That is exactly the standard 7-point stencil of the 3-D Laplacian with
//! the sign convention the paper uses.
//!
//! The paper runs `n³` from `1088³` (256 ranks) to `2160³` (2,048 ranks);
//! those sizes do not fit in one node's memory, so the experiment harness
//! scales `n` down by a documented factor and reproduces the *per-rank
//! checkpoint sizes* of Table 3 through the rank/PFS model instead (see
//! `lcr-ckpt`).  This module generates the same matrix family at any `n`.

use crate::{CooMatrix, CsrMatrix, Vector};

/// Generates the paper's 3-D Poisson matrix of dimension `n³ × n³`
/// (Equation 15): 7-point stencil, `-6` diagonal, `+1` off-diagonals.
///
/// The matrix is symmetric negative definite; iterative solvers in this
/// repository conventionally solve `A x = b` with this sign, exactly as the
/// paper states it.
pub fn poisson3d(n: usize) -> CsrMatrix {
    let n2 = n * n;
    let n3 = n2 * n;
    // 7 entries per interior point.
    let mut coo = CooMatrix::with_capacity(n3, n3, 7 * n3);
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                let row = k * n2 + j * n + i;
                coo.push(row, row, -6.0).expect("diagonal in bounds");
                if i > 0 {
                    coo.push(row, row - 1, 1.0).unwrap();
                }
                if i + 1 < n {
                    coo.push(row, row + 1, 1.0).unwrap();
                }
                if j > 0 {
                    coo.push(row, row - n, 1.0).unwrap();
                }
                if j + 1 < n {
                    coo.push(row, row + n, 1.0).unwrap();
                }
                if k > 0 {
                    coo.push(row, row - n2, 1.0).unwrap();
                }
                if k + 1 < n {
                    coo.push(row, row + n2, 1.0).unwrap();
                }
            }
        }
    }
    coo.to_csr()
}

/// Generates the 2-D 5-point Poisson matrix (`-4` diagonal) of dimension
/// `n² × n²`.  Useful for faster tests and the CFD example.
pub fn poisson2d(n: usize) -> CsrMatrix {
    let n2 = n * n;
    let mut coo = CooMatrix::with_capacity(n2, n2, 5 * n2);
    for j in 0..n {
        for i in 0..n {
            let row = j * n + i;
            coo.push(row, row, -4.0).unwrap();
            if i > 0 {
                coo.push(row, row - 1, 1.0).unwrap();
            }
            if i + 1 < n {
                coo.push(row, row + 1, 1.0).unwrap();
            }
            if j > 0 {
                coo.push(row, row - n, 1.0).unwrap();
            }
            if j + 1 < n {
                coo.push(row, row + n, 1.0).unwrap();
            }
        }
    }
    coo.to_csr()
}

/// Generates the 1-D second-difference matrix (`-2` diagonal) of dimension
/// `n × n`.
pub fn poisson1d(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::with_capacity(n, n, 3 * n);
    for i in 0..n {
        coo.push(i, i, -2.0).unwrap();
        if i > 0 {
            coo.push(i, i - 1, 1.0).unwrap();
        }
        if i + 1 < n {
            coo.push(i, i + 1, 1.0).unwrap();
        }
    }
    coo.to_csr()
}

/// Builds a right-hand side `b = A x*` for a smooth manufactured solution
/// `x*_i = sin(2π i / n) + 0.5 cos(4π i / n)` so that iterative methods have a
/// known exact solution and the solution vector has the smoothness real PDE
/// fields have (which is what makes lossy compression effective — §5.1 of
/// the paper).
pub fn manufactured_rhs(a: &CsrMatrix) -> (Vector, Vector) {
    let n = a.ncols();
    let mut xstar = Vector::zeros(n);
    for i in 0..n {
        let t = i as f64 / n as f64;
        xstar[i] = (2.0 * std::f64::consts::PI * t).sin()
            + 0.5 * (4.0 * std::f64::consts::PI * t).cos();
    }
    let b = a.mul_vec(&xstar);
    (xstar, b)
}

/// The per-process problem sizes `n` used in Table 3 of the paper, keyed by
/// the number of processes: the paper's weak-scaling grid goes from `1088³`
/// at 256 processes to `2160³` at 2,048 processes.
pub const TABLE3_GRID: &[(usize, usize)] = &[
    (256, 1088),
    (512, 1368),
    (768, 1568),
    (1024, 1728),
    (1280, 1856),
    (1536, 1968),
    (1792, 2064),
    (2048, 2160),
];

/// Looks up the paper's global grid edge length `n` for a process count, if
/// it is one of the Table 3 configurations.
pub fn table3_grid_edge(processes: usize) -> Option<usize> {
    TABLE3_GRID
        .iter()
        .find(|(p, _)| *p == processes)
        .map(|(_, n)| *n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson1d_structure() {
        let a = poisson1d(5);
        assert_eq!(a.nrows(), 5);
        assert_eq!(a.nnz(), 5 * 3 - 2);
        assert_eq!(a.get(0, 0), -2.0);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(4, 3), 1.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn poisson2d_structure() {
        let a = poisson2d(4);
        assert_eq!(a.nrows(), 16);
        assert_eq!(a.get(0, 0), -4.0);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(0, 4), 1.0);
        assert_eq!(a.get(0, 5), 0.0);
        assert!(a.is_symmetric(0.0));
        // Interior row has 5 entries, corner has 3.
        assert_eq!(a.row_indices(5).len(), 5);
        assert_eq!(a.row_indices(0).len(), 3);
    }

    #[test]
    fn poisson3d_matches_paper_stencil() {
        let n = 4;
        let a = poisson3d(n);
        assert_eq!(a.nrows(), n * n * n);
        assert!(a.is_symmetric(0.0));
        // Paper's Equation 15: diagonal is -6, neighbours are +1.
        let interior = 1 + n + n * n + 1; // (1,1,1)-ish interior point
        assert_eq!(a.get(interior, interior), -6.0);
        assert_eq!(a.row_indices(interior).len(), 7);
        // Corner point has 3 neighbours + diagonal.
        assert_eq!(a.row_indices(0).len(), 4);
        assert_eq!(a.get(0, 0), -6.0);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(0, n), 1.0);
        assert_eq!(a.get(0, n * n), 1.0);
    }

    #[test]
    fn poisson3d_is_negative_definite_direction() {
        // x^T A x < 0 for a random nonzero x (A = -Laplacian-like).
        let a = poisson3d(3);
        let mut x = Vector::zeros(a.nrows());
        x.fill_random(3, -1.0, 1.0);
        let quad = x.dot(&a.mul_vec(&x));
        assert!(quad < 0.0, "expected negative definite quadratic form");
    }

    #[test]
    fn manufactured_solution_consistent() {
        let a = poisson3d(4);
        let (xstar, b) = manufactured_rhs(&a);
        let r = a.residual(&xstar, &b);
        assert!(r.norm2() < 1e-12);
        assert!(b.norm2() > 0.0);
    }

    #[test]
    fn poisson_matrices_ship_with_a_finalized_plan() {
        // The COO → CSR finalize point builds the SpMV plan eagerly, so the
        // stencil matrices the experiments solve never pay for plan
        // construction inside a timed solver loop.  The 7-point stencil has
        // shorter boundary rows, so it takes the general (carried-start)
        // path, not the uniform-row one.
        let a = poisson3d(8);
        let plan = a.plan();
        assert_eq!(plan.chunks().last().unwrap().1, a.nrows());
        assert_eq!(plan.uniform_row_nnz(), None);
        assert_eq!(plan.is_parallel(), a.nnz() >= crate::PAR_THRESHOLD);
    }

    #[test]
    fn table3_lookup() {
        assert_eq!(table3_grid_edge(256), Some(1088));
        assert_eq!(table3_grid_edge(2048), Some(2160));
        assert_eq!(table3_grid_edge(100), None);
        assert_eq!(TABLE3_GRID.len(), 8);
    }
}
