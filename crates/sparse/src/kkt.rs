//! Synthetic symmetric-indefinite KKT (saddle-point) system generator.
//!
//! Figure 3 of the paper measures GMRES with a Jacobi preconditioner on the
//! SuiteSparse matrix `KKT240` (≈28 million equations), a symmetric
//! indefinite KKT matrix from 3-D PDE-constrained optimisation.  That matrix
//! is a multi-gigabyte download and is not available offline, so this module
//! generates a synthetic saddle-point system with the same structure:
//!
//! ```text
//!   K = [ H   Aᵀ ]
//!       [ A  −δI ]
//! ```
//!
//! where `H` is a sparse SPD stiffness-like block (a shifted 3-D Laplacian)
//! and `A` is a sparse constraint Jacobian.  `K` is symmetric and
//! indefinite — it has both positive and negative eigenvalues — which is the
//! property that rules CG out and makes GMRES the appropriate solver, as in
//! the paper.  A real `KKT240` Matrix Market file can be substituted via
//! [`crate::matrixmarket::read_matrix_market`].

use crate::{CooMatrix, CsrMatrix, Vector};

/// Parameters controlling the synthetic KKT system.
#[derive(Debug, Clone, Copy)]
pub struct KktConfig {
    /// Edge length of the underlying 3-D grid; the primal block has `n³`
    /// unknowns.
    pub grid_n: usize,
    /// Number of constraints as a fraction of the number of primal unknowns
    /// (KKT240 has roughly a 1:3 constraint-to-variable ratio).
    pub constraint_fraction: f64,
    /// Diagonal shift added to the primal block to keep it well conditioned.
    pub primal_shift: f64,
    /// Regularisation `δ` on the dual block (small, keeps the matrix
    /// non-singular while remaining indefinite).
    pub dual_regularization: f64,
    /// Seed for the sparse constraint pattern.
    pub seed: u64,
}

impl Default for KktConfig {
    fn default() -> Self {
        KktConfig {
            grid_n: 8,
            constraint_fraction: 0.33,
            primal_shift: 8.0,
            dual_regularization: 1e-2,
            seed: 20180611,
        }
    }
}

/// Generates the synthetic symmetric-indefinite KKT matrix described in the
/// module documentation, together with a right-hand side from a smooth
/// manufactured solution.
pub fn kkt_system(config: &KktConfig) -> (CsrMatrix, Vector, Vector) {
    let n = config.grid_n;
    let n3 = n * n * n;
    let m = ((n3 as f64) * config.constraint_fraction).round() as usize;
    let dim = n3 + m;

    let mut coo = CooMatrix::with_capacity(dim, dim, 9 * n3 + 6 * m);

    // H block: shifted negative 3-D Laplacian made positive definite:
    // H = primal_shift * I + (7-point stencil with +6 diagonal).
    let n2 = n * n;
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                let row = k * n2 + j * n + i;
                coo.push(row, row, 6.0 + config.primal_shift).unwrap();
                let mut push_nb = |col: usize| {
                    coo.push(row, col, -1.0).unwrap();
                };
                if i > 0 {
                    push_nb(row - 1);
                }
                if i + 1 < n {
                    push_nb(row + 1);
                }
                if j > 0 {
                    push_nb(row - n);
                }
                if j + 1 < n {
                    push_nb(row + n);
                }
                if k > 0 {
                    push_nb(row - n2);
                }
                if k + 1 < n {
                    push_nb(row + n2);
                }
            }
        }
    }

    // A block (m x n3): each constraint couples three pseudo-random primal
    // variables with coefficients {1, -2, 1}; A and Aᵀ are inserted
    // symmetrically.
    let mut state = config.seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = |bound: usize| -> usize {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 32) as usize % bound
    };
    for c in 0..m {
        let row = n3 + c;
        // Anchor the pattern so every constraint touches a distinct region.
        let anchor = (c * n3 / m.max(1)) % n3;
        let cols = [anchor, next(n3), next(n3)];
        let coeffs = [1.0, -2.0, 1.0];
        for (col, coef) in cols.iter().zip(coeffs.iter()) {
            coo.push(row, *col, *coef).unwrap();
            coo.push(*col, row, *coef).unwrap();
        }
        // Dual regularisation: -δ on the (2,2) block diagonal.
        coo.push(row, row, -config.dual_regularization).unwrap();
    }

    let kkt = coo.to_csr();

    // Manufactured smooth solution and consistent RHS.
    let mut xstar = Vector::zeros(dim);
    for i in 0..dim {
        let t = i as f64 / dim as f64;
        xstar[i] = (3.0 * std::f64::consts::PI * t).sin() * (1.0 - t) + 0.1;
    }
    let b = kkt.mul_vec(&xstar);
    (kkt, xstar, b)
}

/// Estimates whether a symmetric matrix is indefinite by sampling the
/// quadratic form `xᵀAx` with deterministic pseudo-random vectors: if both
/// signs appear the matrix is certainly indefinite.
pub fn appears_indefinite(a: &CsrMatrix, samples: usize) -> bool {
    let mut saw_pos = false;
    let mut saw_neg = false;
    for s in 0..samples {
        let mut x = Vector::zeros(a.nrows());
        x.fill_random(1000 + s as u64, -1.0, 1.0);
        let q = x.dot(&a.mul_vec(&x));
        if q > 0.0 {
            saw_pos = true;
        }
        if q < 0.0 {
            saw_neg = true;
        }
        if saw_pos && saw_neg {
            return true;
        }
    }
    // Also try coordinate directions concentrated on the dual block, which
    // is where the negative curvature lives.
    let n = a.nrows();
    for i in [n - 1, n / 2, 0] {
        let mut e = Vector::zeros(n);
        e[i] = 1.0;
        let q = e.dot(&a.mul_vec(&e));
        if q > 0.0 {
            saw_pos = true;
        }
        if q < 0.0 {
            saw_neg = true;
        }
    }
    saw_pos && saw_neg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kkt_is_symmetric_and_indefinite() {
        let cfg = KktConfig {
            grid_n: 5,
            ..KktConfig::default()
        };
        let (k, _xstar, _b) = kkt_system(&cfg);
        let n3 = 125;
        let m = ((n3 as f64) * cfg.constraint_fraction).round() as usize;
        assert_eq!(k.nrows(), n3 + m);
        assert!(k.is_symmetric(1e-12), "KKT matrix must be symmetric");
        assert!(
            appears_indefinite(&k, 16),
            "KKT matrix must be indefinite (positive and negative curvature)"
        );
    }

    #[test]
    fn rhs_is_consistent_with_manufactured_solution() {
        let (k, xstar, b) = kkt_system(&KktConfig::default());
        let r = k.residual(&xstar, &b);
        assert!(r.norm2() <= 1e-10 * b.norm2().max(1.0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = KktConfig::default();
        let (k1, _, b1) = kkt_system(&cfg);
        let (k2, _, b2) = kkt_system(&cfg);
        assert_eq!(k1, k2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn different_seed_changes_constraints() {
        let a = kkt_system(&KktConfig::default()).0;
        let b = kkt_system(&KktConfig {
            seed: 7,
            ..KktConfig::default()
        })
        .0;
        assert_ne!(a, b);
    }

    #[test]
    fn diagonal_nonzero_everywhere() {
        // Needed for the Jacobi preconditioner used in Figure 3.
        let (k, _, _) = kkt_system(&KktConfig::default());
        assert!(k.require_nonzero_diagonal().is_ok());
    }
}
