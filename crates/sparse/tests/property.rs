//! Property-based tests of the sparse-matrix substrate's invariants.

use lcr_sparse::{BlockRowPartition, CooMatrix, CsrMatrix, Vector};
use proptest::prelude::*;

/// Strategy producing a random small dense matrix as (nrows, ncols, data).
fn dense_matrix() -> impl Strategy<Value = (usize, usize, Vec<f64>)> {
    (1usize..12, 1usize..12).prop_flat_map(|(r, c)| {
        prop::collection::vec(
            prop_oneof![3 => Just(0.0f64), 2 => -10.0f64..10.0],
            r * c,
        )
        .prop_map(move |data| (r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn coo_to_csr_matches_dense((r, c, data) in dense_matrix()) {
        let mut coo = CooMatrix::new(r, c);
        for i in 0..r {
            for j in 0..c {
                let v = data[i * c + j];
                if v != 0.0 {
                    coo.push(i, j, v).unwrap();
                }
            }
        }
        let csr = coo.to_csr();
        prop_assert_eq!(csr.nrows(), r);
        prop_assert_eq!(csr.ncols(), c);
        for i in 0..r {
            for j in 0..c {
                prop_assert_eq!(csr.get(i, j), data[i * c + j]);
            }
        }
    }

    #[test]
    fn spmv_matches_dense_product((r, c, data) in dense_matrix(), seed in 0u64..1000) {
        let a = CsrMatrix::from_dense(r, c, &data);
        let mut x = Vector::zeros(c);
        x.fill_random(seed, -2.0, 2.0);
        let y = a.mul_vec(&x);
        for i in 0..r {
            let expected: f64 = (0..c).map(|j| data[i * c + j] * x[j]).sum();
            prop_assert!((y[i] - expected).abs() <= 1e-9 * expected.abs().max(1.0));
        }
    }

    #[test]
    fn transpose_is_involutive_and_preserves_entries((r, c, data) in dense_matrix()) {
        let a = CsrMatrix::from_dense(r, c, &data);
        let t = a.transpose();
        prop_assert_eq!(t.nrows(), c);
        prop_assert_eq!(t.ncols(), r);
        for i in 0..r {
            for j in 0..c {
                prop_assert_eq!(a.get(i, j), t.get(j, i));
            }
        }
        prop_assert_eq!(t.transpose(), a);
    }

    #[test]
    fn split_ldu_reassembles((n, _, data) in (1usize..10).prop_flat_map(|n| {
        prop::collection::vec(-5.0f64..5.0, n * n).prop_map(move |d| (n, n, d))
    })) {
        let a = CsrMatrix::from_dense(n, n, &data);
        let (l, d, u) = a.split_ldu();
        for i in 0..n {
            for j in 0..n {
                let total = l.get(i, j) + u.get(i, j) + if i == j { d[i] } else { 0.0 };
                prop_assert!((total - a.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn partition_covers_every_row_exactly_once(n in 1usize..5000, ranks in 1usize..256) {
        let p = BlockRowPartition::new(n, ranks);
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for range in p.iter() {
            prop_assert_eq!(range.start, prev_end);
            prev_end = range.end;
            covered += range.len();
            prop_assert!(range.len() <= p.max_local_rows());
        }
        prop_assert_eq!(prev_end, n);
        prop_assert_eq!(covered, n);
        // Owner lookup is consistent with the ranges.
        for row in (0..n).step_by((n / 17).max(1)) {
            let owner = p.owner(row);
            prop_assert!(p.range(owner).contains(row));
        }
    }

    #[test]
    fn matrix_market_roundtrip((r, c, data) in dense_matrix()) {
        let a = CsrMatrix::from_dense(r, c, &data);
        let mut buf = Vec::new();
        lcr_sparse::matrixmarket::write_matrix_market(&a, &mut buf).unwrap();
        let b = lcr_sparse::matrixmarket::parse_matrix_market(buf.as_slice()).unwrap();
        prop_assert_eq!(a.nnz(), b.nnz());
        for i in 0..r {
            for j in 0..c {
                prop_assert!((a.get(i, j) - b.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn vector_axpy_dot_identities(seed in 0u64..1000, n in 1usize..300, alpha in -3.0f64..3.0) {
        let mut x = Vector::zeros(n);
        let mut y = Vector::zeros(n);
        x.fill_random(seed, -1.0, 1.0);
        y.fill_random(seed ^ 0xABCD, -1.0, 1.0);
        // dot symmetry
        prop_assert!((x.dot(&y) - y.dot(&x)).abs() < 1e-12);
        // ||x||² == x·x
        prop_assert!((x.norm2().powi(2) - x.dot(&x)).abs() < 1e-9);
        // axpy linearity: (y + αx)·z == y·z + α x·z
        let mut z = Vector::zeros(n);
        z.fill_random(seed ^ 0x1234, -1.0, 1.0);
        let lhs = {
            let mut t = y.clone();
            t.axpy(alpha, &x);
            t.dot(&z)
        };
        let rhs = y.dot(&z) + alpha * x.dot(&z);
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }
}

/// Adversarial `(n, ranks)` pairs for the partition: tiny and huge row
/// counts, rank counts both far below and above `n`, and near-boundary
/// skews (`ranks − 1`, `ranks`, `ranks + 1` extra rows).
fn partition_shapes() -> impl Strategy<Value = (usize, usize)> {
    prop_oneof![
        // General case.
        (1usize..5000, 1usize..64),
        // More ranks than rows (empty ranks; owner's base.max(1) guard).
        (1usize..40, 1usize..200),
        // Exact-division and off-by-one skew around a rank multiple.
        (1usize..64).prop_flat_map(|ranks| {
            (0usize..3, 1usize..80).prop_map(move |(off, mult)| {
                ((ranks * mult + off).max(1), ranks)
            })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pins the closed-form O(1) `owner` against the iterator-based
    /// answer: the unique rank whose range contains the row.
    #[test]
    fn owner_matches_iterator_reference((n, ranks) in partition_shapes()) {
        let p = BlockRowPartition::new(n, ranks);
        // Probe every row for small n, a boundary-heavy sample otherwise.
        let rows: Vec<usize> = if n <= 512 {
            (0..n).collect()
        } else {
            let mut rows: Vec<usize> = (0..ranks.min(n))
                .flat_map(|r| {
                    let range = p.range(r);
                    [range.start, range.end.saturating_sub(1)]
                })
                .chain([0, n / 2, n - 1])
                .filter(|&row| row < n)
                .collect();
            rows.sort_unstable();
            rows.dedup();
            rows
        };
        for row in rows {
            let reference = p
                .iter()
                .find(|range| range.contains(row))
                .expect("every row is owned by exactly one rank")
                .rank;
            prop_assert_eq!(p.owner(row), reference, "row {}", row);
        }
        // Ranges partition [0, n) exactly.
        let covered: usize = p.iter().map(|r| r.len()).sum();
        prop_assert_eq!(covered, n);
    }
}
