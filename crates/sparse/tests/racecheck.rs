//! Race/aliasing-checker integration tests (`--features racecheck`).
//!
//! These drive deliberately broken partition plans through the *real*
//! kernel entry points and assert the claim checker catches them, plus a
//! correctness pass proving valid custom plans still produce the right
//! answers with the instrumentation live.  Run at both `LCR_NUM_THREADS=1`
//! and `>1` — the claims are checked in either case.

#![cfg(feature = "racecheck")]

use lcr_sparse::kernels::spmv_dot;
use lcr_sparse::{poisson, CsrMatrix, RowBlock, SpmvPlan};
use std::panic::{catch_unwind, AssertUnwindSafe};

const N: usize = 64;

fn matrix() -> CsrMatrix {
    poisson::poisson1d(N)
}

fn x0() -> Vec<f64> {
    (0..N).map(|i| (i as f64 * 0.37).sin()).collect()
}

fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "<non-string payload>".to_string())
}

#[test]
fn racecheck_is_compiled_in() {
    assert!(rayon::racecheck::enabled());
}

#[test]
fn disjoint_custom_plan_matches_default_plan() {
    let reference = {
        let a = matrix();
        let mut y = vec![0.0; N];
        a.spmv(&x0(), &mut y);
        y
    };

    // A hand-written disjoint partition, forced parallel, must produce
    // bit-identical results under the live claim checker.
    let mut a = matrix();
    a.override_plan_for_racecheck(SpmvPlan::for_racecheck(
        vec![(0, 17), (17, 32), (32, N)],
        None,
    ));
    let mut y = vec![0.0; N];
    a.spmv(&x0(), &mut y);
    assert_eq!(y, reference);
}

#[test]
fn overlapping_plan_panics_with_both_ranges() {
    let mut a = matrix();
    // Chunks 0..33 and 32..N overlap on row 32 — exactly the
    // off-by-one a buggy split formula would produce.
    a.override_plan_for_racecheck(SpmvPlan::for_racecheck(vec![(0, 33), (32, N)], None));
    let x = x0();
    let mut y = vec![0.0; N];
    let err = catch_unwind(AssertUnwindSafe(|| a.spmv(&x, &mut y))).unwrap_err();
    let msg = panic_message(err);
    assert!(
        msg.contains("overlaps"),
        "expected an overlap report, got: {msg}"
    );
}

#[test]
fn out_of_bounds_plan_panics() {
    let mut a = matrix();
    // Final chunk runs one row past the matrix.
    a.override_plan_for_racecheck(SpmvPlan::for_racecheck(vec![(0, 32), (32, N + 1)], None));
    let x = x0();
    let mut y = vec![0.0; N];
    let err = catch_unwind(AssertUnwindSafe(|| a.spmv(&x, &mut y))).unwrap_err();
    let msg = panic_message(err);
    assert!(
        msg.contains("out of bounds"),
        "expected an out-of-bounds report, got: {msg}"
    );
}

#[test]
fn fused_kernels_pass_under_racecheck() {
    // The fused two-output kernels claim against *separate* buffers; a
    // full solver-style pass over them must stay panic-free and correct.
    let a = matrix();
    let x = x0();
    let mut y = vec![0.0; N];
    let d = spmv_dot(&a, &x, &mut y, &x);
    let mut y2 = vec![0.0; N];
    a.spmv(&x, &mut y2);
    assert_eq!(y, y2);
    let serial: f64 = y2.iter().zip(&x).map(|(a, b)| a * b).sum();
    assert!((d - serial).abs() <= 1e-12 * serial.abs().max(1.0));

    let b = vec![1.0; N];
    let mut r = vec![0.0; N];
    a.residual_into(&x, &b, &mut r);
    for i in 0..N {
        assert_eq!(r[i], b[i] - y2[i]);
    }
}

/// The 1-D Poisson matrix's true block decomposition for a single
/// whole-matrix chunk: a one-row tail (2 entries), a width-3 slab over the
/// interior rows, a one-row tail (2 entries).
fn valid_blocks(a: &CsrMatrix) -> Vec<RowBlock> {
    let indptr = a.indptr();
    vec![
        RowBlock::Tail { rows: (0, 1) },
        RowBlock::Slab {
            rows: (1, N - 1),
            width: 3,
            k: indptr[1],
        },
        RowBlock::Tail { rows: (N - 1, N) },
    ]
}

#[test]
fn valid_custom_slab_plan_matches_reference() {
    // A hand-written SELL decomposition, driven through the live block
    // validator, must reproduce the default plan's output bit-for-bit.
    let reference = {
        let a = matrix();
        let mut y = vec![0.0; N];
        a.spmv(&x0(), &mut y);
        y
    };
    let mut a = matrix();
    let blocks = valid_blocks(&a);
    a.override_plan_for_racecheck(SpmvPlan::for_racecheck_with_blocks(
        vec![(0, N)],
        vec![blocks],
    ));
    let mut y = vec![0.0; N];
    a.spmv(&x0(), &mut y);
    assert_eq!(y, reference);
}

#[test]
fn overlapping_slab_rows_panic() {
    // Slab reaches one row into the trailing tail — the off-by-one a buggy
    // run-length scan would produce.
    let mut a = matrix();
    // Tails listed first so the slab's row claim is what collides — the
    // checker reports the row overlap itself, not a storage side effect.
    let blocks = vec![
        RowBlock::Tail { rows: (0, 1) },
        RowBlock::Tail { rows: (N - 1, N) },
        RowBlock::Slab {
            rows: (1, N),
            width: 3,
            k: a.indptr()[1],
        },
    ];
    a.override_plan_for_racecheck(SpmvPlan::for_racecheck_with_blocks(
        vec![(0, N)],
        vec![blocks],
    ));
    let x = x0();
    let mut y = vec![0.0; N];
    let err = catch_unwind(AssertUnwindSafe(|| a.spmv(&x, &mut y))).unwrap_err();
    let msg = panic_message(err);
    assert!(
        msg.contains("overlaps"),
        "expected an overlap report, got: {msg}"
    );
}

#[test]
fn mis_tiled_blocks_panic() {
    // Blocks leave row N-2 uncovered: disjoint and in bounds, but they do
    // not tile the chunk.
    let mut a = matrix();
    let blocks = vec![
        RowBlock::Tail { rows: (0, 1) },
        RowBlock::Slab {
            rows: (1, N - 2),
            width: 3,
            k: a.indptr()[1],
        },
        RowBlock::Tail { rows: (N - 1, N) },
    ];
    a.override_plan_for_racecheck(SpmvPlan::for_racecheck_with_blocks(
        vec![(0, N)],
        vec![blocks],
    ));
    let x = x0();
    let mut y = vec![0.0; N];
    let err = catch_unwind(AssertUnwindSafe(|| a.spmv(&x, &mut y))).unwrap_err();
    let msg = panic_message(err);
    assert!(
        msg.contains("do not tile"),
        "expected a tiling report, got: {msg}"
    );
}

#[test]
fn slab_extent_past_values_panics() {
    // Row ranges are fine, but the slab's storage offset is shifted so its
    // extent runs past the value array — the aliasing bug a wrong `k`
    // would cause, caught before any unchecked read.
    let mut a = matrix();
    let nnz = a.nnz();
    let blocks = vec![
        RowBlock::Tail { rows: (0, 1) },
        RowBlock::Slab {
            rows: (1, N - 1),
            width: 3,
            // Correct k is indptr[1] = 2; this pushes the extent past nnz.
            k: nnz - 3 * (N - 2) + 8,
        },
        RowBlock::Tail { rows: (N - 1, N) },
    ];
    a.override_plan_for_racecheck(SpmvPlan::for_racecheck_with_blocks(
        vec![(0, N)],
        vec![blocks],
    ));
    let x = x0();
    let mut y = vec![0.0; N];
    let err = catch_unwind(AssertUnwindSafe(|| a.spmv(&x, &mut y))).unwrap_err();
    let msg = panic_message(err);
    assert!(
        msg.contains("out of bounds"),
        "expected an out-of-bounds report, got: {msg}"
    );
}

#[test]
fn block_rows_before_chunk_start_panic() {
    // Two chunks; the second chunk's tail starts before its own row range
    // (a stale r0 from the previous chunk).
    let mut a = matrix();
    let blocks = vec![
        vec![RowBlock::Tail { rows: (0, 32) }],
        vec![RowBlock::Tail { rows: (30, N) }],
    ];
    a.override_plan_for_racecheck(SpmvPlan::for_racecheck_with_blocks(
        vec![(0, 32), (32, N)],
        blocks,
    ));
    let x = x0();
    let mut y = vec![0.0; N];
    let err = catch_unwind(AssertUnwindSafe(|| a.spmv(&x, &mut y))).unwrap_err();
    let msg = panic_message(err);
    assert!(
        msg.contains("start before chunk rows") || msg.contains("do not tile"),
        "expected a chunk-extent report, got: {msg}"
    );
}

#[test]
fn aliased_halo_recv_ranges_panic() {
    // Two peers scatter into the same halo slot while another slot stays
    // unwritten.  The coverage *count* balances (2 + 1 = 3 = halo_len), so
    // the plain cover assertion cannot see it — only the claim checker
    // catches the aliased scatter targets.
    use lcr_sparse::HaloPlan;
    let plan = HaloPlan {
        halo_cols: vec![3, 7, 9],
        recv_ranges: vec![(0, 2), (1, 2)],
        send_rows: vec![Vec::new(), Vec::new()],
    };
    let err = catch_unwind(AssertUnwindSafe(|| plan.validate())).unwrap_err();
    let msg = panic_message(err);
    assert!(
        msg.contains("overlaps"),
        "expected an overlap report, got: {msg}"
    );
}

#[test]
fn out_of_bounds_halo_recv_range_panics() {
    // A receive range running past the halo buffer must be rejected
    // before any scatter happens.
    use lcr_sparse::HaloPlan;
    let plan = HaloPlan {
        halo_cols: vec![3, 7],
        recv_ranges: vec![(0, 3)],
        send_rows: vec![Vec::new()],
    };
    let err = catch_unwind(AssertUnwindSafe(|| plan.validate())).unwrap_err();
    let msg = panic_message(err);
    assert!(
        msg.contains("halo recv range bounds"),
        "expected a bounds report, got: {msg}"
    );
}

#[test]
fn partitioned_halo_plans_validate_under_racecheck() {
    // Real plans from the 3-D stencil partition: every shard's receive
    // ranges must claim disjointly and tile the halo buffer exactly, with
    // the checker live.
    let a = poisson::poisson3d(6);
    for shards in [2usize, 3, 4] {
        let layout = lcr_sparse::ShardLayout::with_block(a.nrows(), shards, 27);
        for view in lcr_sparse::shard::partition_csr(&a, &layout) {
            view.halo.validate();
        }
    }
}

#[test]
fn checker_reports_survive_the_thread_hop() {
    // With enough chunks the claims are made on pool workers; the panic
    // payload must still surface on the caller with its message intact.
    let mut a = matrix();
    let chunks: Vec<(usize, usize)> = (0..8)
        .map(|i| {
            let s = i * N / 8;
            let e = (i + 1) * N / 8;
            // Make chunk 5 reach one row into chunk 6.
            if i == 5 {
                (s, e + 1)
            } else {
                (s, e)
            }
        })
        .collect();
    a.override_plan_for_racecheck(SpmvPlan::for_racecheck(chunks, None));
    let x = x0();
    let mut y = vec![0.0; N];
    let err = catch_unwind(AssertUnwindSafe(|| a.spmv(&x, &mut y))).unwrap_err();
    assert!(panic_message(err).contains("overlaps"));
}
