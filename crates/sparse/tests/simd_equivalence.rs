//! Property tests of the SIMD determinism contract: every lane-vectorized
//! kernel in `lcr_sparse::simd` is **bit-for-bit** identical to its
//! same-recurrence scalar mirror, on arbitrary lengths (block remainders
//! included) and arbitrary finite values.  The CI thread matrix runs this
//! suite at `LCR_NUM_THREADS=1` and `4`; the threaded wrappers
//! (`vector::dot`, the fused `kernels::*`) are additionally pinned against
//! single-slice lane results through the deterministic chunk reduction.

use lcr_sparse::simd::{self, scalar};
use lcr_sparse::vector;
use proptest::prelude::*;

/// Random finite doubles with a spread of magnitudes: lane reassociation
/// bugs show up exactly when the addends differ in scale.
fn values(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            4 => -1.0e3f64..1.0e3,
            2 => -1.0e-6f64..1.0e-6,
            1 => Just(0.0f64),
        ],
        len,
    )
}

/// Lengths crossing every code-path boundary: empty, sub-block, exact
/// 8-lane blocks, block + remainder, and "large" (multiple pool chunks
/// when the threaded wrappers run at `LCR_NUM_THREADS=4`).
fn lengths() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        1usize..9,
        Just(16usize),
        17usize..40,
        Just(4096usize),
        4097usize..4200,
    ]
}

fn bits(x: f64) -> u64 {
    x.to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dot_lane_equals_scalar((a, b) in lengths().prop_flat_map(|n| (values(n), values(n)))) {
        prop_assert_eq!(bits(simd::dot(&a, &b)), bits(scalar::dot(&a, &b)));
    }

    #[test]
    fn dot2_lane_equals_scalar((s, a, b) in lengths().prop_flat_map(|n| (values(n), values(n), values(n)))) {
        let (sa, sb) = simd::dot2(&s, &a, &b);
        let (ra, rb) = scalar::dot2(&s, &a, &b);
        prop_assert_eq!(bits(sa), bits(ra));
        prop_assert_eq!(bits(sb), bits(rb));
    }

    #[test]
    fn axpy2_norm2_lane_equals_scalar(
        (p, q, x, r) in lengths().prop_flat_map(|n| (values(n), values(n), values(n), values(n))),
        alpha in -2.0f64..2.0,
    ) {
        let (mut x1, mut r1) = (x.clone(), r.clone());
        let (mut x2, mut r2) = (x, r);
        let n1 = simd::axpy2_norm2(alpha, &p, &q, &mut x1, &mut r1);
        let n2 = scalar::axpy2_norm2(alpha, &p, &q, &mut x2, &mut r2);
        prop_assert_eq!(bits(n1), bits(n2));
        prop_assert_eq!(x1, x2);
        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn waxpy_norm2_lane_equals_scalar(
        (x, y) in lengths().prop_flat_map(|n| (values(n), values(n))),
        alpha in -2.0f64..2.0,
    ) {
        let mut out1 = vec![0.0; x.len()];
        let mut out2 = vec![0.0; x.len()];
        let n1 = simd::waxpy_norm2(&mut out1, &x, alpha, &y);
        let n2 = scalar::waxpy_norm2(&mut out2, &x, alpha, &y);
        prop_assert_eq!(bits(n1), bits(n2));
        prop_assert_eq!(out1, out2);
    }

    #[test]
    fn axpy_norm2_lane_equals_scalar(
        (x, y) in lengths().prop_flat_map(|n| (values(n), values(n))),
        alpha in -2.0f64..2.0,
    ) {
        let mut y1 = y.clone();
        let mut y2 = y;
        let n1 = simd::axpy_norm2(alpha, &x, &mut y1);
        let n2 = scalar::axpy_norm2(alpha, &x, &mut y2);
        prop_assert_eq!(bits(n1), bits(n2));
        prop_assert_eq!(y1, y2);
    }

    #[test]
    fn bicgstab_p_update_lane_equals_scalar(
        (p, r, v) in lengths().prop_flat_map(|n| (values(n), values(n), values(n))),
        beta in -2.0f64..2.0,
        omega in -2.0f64..2.0,
    ) {
        let mut p1 = p.clone();
        let mut p2 = p;
        simd::bicgstab_p_update(&mut p1, &r, &v, beta, omega);
        scalar::bicgstab_p_update(&mut p2, &r, &v, beta, omega);
        prop_assert_eq!(p1, p2);
    }

    /// The threaded `vector::dot` is the chunk-ordered sum of per-chunk
    /// lane dots — single-slice below `PAR_THRESHOLD`, the shim's
    /// deterministic chunking above it.  This pins the whole stack (pool
    /// scheduling included, at whatever `LCR_NUM_THREADS` the harness set)
    /// to the lane kernel's bits.
    #[test]
    fn threaded_dot_is_chunk_ordered_lane_dot(
        (a, b) in prop_oneof![3 => lengths(), 1 => Just(vector::PAR_THRESHOLD + 137)]
            .prop_flat_map(|n| (values(n), values(n))),
    ) {
        let threaded = vector::dot(&a, &b);
        let chunked: f64 = if a.len() < vector::PAR_THRESHOLD {
            simd::dot(&a, &b)
        } else {
            rayon::run_chunks(a.len(), rayon::DEFAULT_MIN_CHUNK, |s, e| {
                simd::dot(&a[s..e], &b[s..e])
            })
            .into_iter()
            .sum()
        };
        prop_assert_eq!(bits(threaded), bits(chunked));
    }
}
