//! Umbrella-crate smoke test: one CG solve with an SZ-compressed
//! checkpoint and a lossy restart, driven exclusively through the
//! `lossy_ckpt::{sparse, solvers, compress, ckpt}` re-export paths — the
//! exact pipeline of the paper's Algorithm 2, at the smallest useful size.

use lossy_ckpt::ckpt::{CheckpointLevel, ClusterConfig, FtiContext, PfsModel, SimClock};
use lossy_ckpt::compress::{Compressed, ErrorBound, LossyCompressor, SzCompressor};
use lossy_ckpt::solvers::{ConjugateGradient, IterativeMethod, LinearSystem, StoppingCriteria};
use lossy_ckpt::sparse::poisson::{manufactured_rhs, poisson3d};
use lossy_ckpt::sparse::Vector;

#[test]
fn cg_solve_sz_checkpoint_lossy_restart_roundtrip() {
    // -- build a small SPD Poisson system with a known exact solution -----
    let a = poisson3d(8);
    let n = a.nrows();
    let (xstar, b) = manufactured_rhs(&a);
    let system = LinearSystem::new(a, b);

    // -- run CG halfway to convergence ------------------------------------
    let criteria = StoppingCriteria::new(1e-10, 10_000);
    let mut solver =
        ConjugateGradient::unpreconditioned(system.clone(), Vector::zeros(n), criteria);
    let mut baseline =
        ConjugateGradient::unpreconditioned(system.clone(), Vector::zeros(n), criteria);
    baseline.run_to_convergence();
    let baseline_iters = baseline.iteration();
    assert!(baseline_iters > 4, "system too easy to exercise a restart");
    for _ in 0..baseline_iters / 2 {
        solver.step();
    }
    let ckpt_iteration = solver.iteration();

    // -- SZ-compress the solution vector (the lossy scheme's only dynamic
    //    variable) and snapshot it through the FTI-like context ------------
    let eb = 1e-5;
    let sz = SzCompressor::new();
    let compressed = sz
        .compress(solver.solution().as_slice(), ErrorBound::PointwiseRel(eb))
        .expect("SZ compression of the CG solution failed");
    assert!(
        compressed.ratio() > 1.0,
        "SZ should compress smooth solver state (ratio {})",
        compressed.ratio()
    );

    let mut clock = SimClock::new();
    let mut fti = FtiContext::new(
        ClusterConfig::bebop_like(64, 1.0),
        PfsModel::bebop_like(),
        CheckpointLevel::Pfs,
    );
    fti.protect("x", n * std::mem::size_of::<f64>());
    let (metadata, write_seconds) = fti.snapshot(
        &mut clock,
        ckpt_iteration,
        vec![("x".to_string(), compressed.bytes.clone())],
    );
    assert_eq!(metadata.iteration, ckpt_iteration);
    assert!(write_seconds > 0.0, "PFS write must consume simulated time");
    assert!(clock.now() >= write_seconds);

    // -- simulated failure: recover the payload, decompress, restart ------
    let recovered = fti
        .recover(&mut clock, n * std::mem::size_of::<f64>())
        .expect("recovery from the latest checkpoint failed");
    assert_eq!(recovered.iteration, ckpt_iteration);
    let (_, payload) = recovered
        .payloads()
        .iter()
        .find(|(id, _)| id == "x")
        .expect("checkpoint payload for 'x' missing");
    let restored = sz
        .decompress(&Compressed {
            bytes: payload.clone(),
            n_elements: n,
        })
        .expect("SZ decompression of the recovered payload failed");

    // The error-bound contract holds element-wise on the recovered state.
    for (orig, rest) in solver.solution().as_slice().iter().zip(restored.iter()) {
        let allowed = eb * orig.abs() * (1.0 + 1e-9) + 1e-300;
        assert!(
            (orig - rest).abs() <= allowed,
            "SZ bound violated: |{orig} - {rest}| > {allowed}"
        );
    }

    // Algorithm 2: treat the decompressed solution as a fresh initial guess.
    let mut recovered_solver =
        ConjugateGradient::unpreconditioned(system, Vector::zeros(n), criteria);
    recovered_solver.restart_from_solution(Vector::from_vec(restored), ckpt_iteration);
    assert_eq!(recovered_solver.iteration(), ckpt_iteration);
    recovered_solver.run_to_convergence();

    // -- the restarted run still converges to the right answer ------------
    assert!(
        !recovered_solver.history().limit_reached,
        "restarted CG failed to converge"
    );
    let err = recovered_solver.solution().max_abs_diff(&xstar);
    assert!(err < 1e-6, "restarted CG converged to the wrong answer: {err}");
    // ... and the lossy restart cost only modest extra iterations.
    assert!(
        recovered_solver.iteration() <= baseline_iters * 2 + 10,
        "lossy restart cost too many iterations: {} vs baseline {}",
        recovered_solver.iteration(),
        baseline_iters
    );
}
