//! Shard-count invariance of the sharded execution backend.
//!
//! The determinism contract of `lcr_sparse::shard` promises residual
//! traces and converged solutions **bit-identical across shard counts**
//! (for a fixed reduction-block size) and trivially independent of
//! `LCR_NUM_THREADS` (the shard loops never consult the pool — the shards
//! are the parallelism).  CI runs this file across a shard × thread
//! matrix; in-process we additionally sweep 1/2/4 shards and both thread
//! caps directly.

use lossy_ckpt::core::sharded::{run_sharded, ShardedReport, ShardedRunConfig};
use lossy_ckpt::solvers::ShardedMethod;
use lossy_ckpt::sparse::poisson::poisson3d;
use lossy_ckpt::sparse::{CsrMatrix, Vector};
use proptest::prelude::*;

/// The paper's Poisson operator is negative definite; CG needs SPD.
fn spd_poisson(edge: usize) -> (CsrMatrix, Vector) {
    let mut a = poisson3d(edge);
    for v in a.values_mut() {
        *v = -*v;
    }
    let b = Vector::filled(a.nrows(), 1.0);
    (a, b)
}

fn assert_bit_identical(base: &ShardedReport, other: &ShardedReport, label: &str) {
    assert_eq!(other.iterations, base.iterations, "{label}: iterations");
    assert_eq!(other.converged, base.converged, "{label}: convergence");
    assert_eq!(
        other.residual_trace.len(),
        base.residual_trace.len(),
        "{label}: trace length"
    );
    for (k, (x, y)) in other
        .residual_trace
        .iter()
        .zip(&base.residual_trace)
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: trace entry {k}");
    }
    for (i, (x, y)) in other
        .solution
        .as_slice()
        .iter()
        .zip(base.solution.as_slice())
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: solution entry {i}");
    }
}

/// The acceptance benchmark: sharded CG on the 64³ Poisson system produces
/// a bit-identical residual trace at 1, 2 and 4 shards (default
/// reduction-block size), at any thread-pool cap.
#[test]
fn cg_64cube_trace_bit_identical_at_1_2_4_shards() {
    let (a, b) = spd_poisson(64);
    let run = |shards: usize| {
        let mut cfg = ShardedRunConfig::new(shards, ShardedMethod::Cg);
        // Capped: the contract is about the trace, not convergence.
        cfg.max_iterations = 30;
        cfg.rtol = 1e-30;
        run_sharded(&a, &b, &cfg)
    };
    let base = run(1);
    assert_eq!(base.iterations, 30);
    for shards in [2, 4] {
        let report = run(shards);
        assert_bit_identical(&base, &report, &format!("{shards} shards"));
        // Multi-shard runs really exchanged halos.
        let doubles: u64 = report.shards.iter().map(|s| s.halo_doubles_sent).sum();
        assert!(doubles > 0, "{shards} shards exchanged no halo data");
    }
}

/// Thread-count invariance, in-process: the same sharded run under a
/// 1-thread and a 4-thread kernel pool cap yields the same bits.
#[test]
fn sharded_traces_ignore_thread_pool_cap() {
    let (a, b) = spd_poisson(16);
    let mut cfg = ShardedRunConfig::new(3, ShardedMethod::Cg);
    cfg.max_iterations = 25;
    cfg.rtol = 1e-30;
    cfg.reduce_block = 256;
    let run_with_cap = |cap: usize| {
        let prev = rayon::max_active_threads();
        rayon::set_max_active_threads(cap);
        let report = run_sharded(&a, &b, &cfg);
        rayon::set_max_active_threads(prev);
        report
    };
    let one = run_with_cap(1);
    let four = run_with_cap(4);
    assert_bit_identical(&one, &four, "thread cap 4");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// CG and BiCGStab shard-count invariance on small random-shaped
    /// grids: any shard count (including shards > blocks, leaving some
    /// shards empty) reproduces the single-shard bits for a fixed
    /// reduction-block size.
    #[test]
    fn krylov_traces_are_shard_count_invariant(
        edge in 4usize..8,
        shards in 2usize..6,
        block_pow in 3u32..6,
        cg in any::<bool>(),
    ) {
        let block = 1usize << block_pow;
        let (a, b) = if cg {
            spd_poisson(edge)
        } else {
            let a = poisson3d(edge);
            let b = Vector::filled(a.nrows(), 1.0);
            (a, b)
        };
        let method = if cg { ShardedMethod::Cg } else { ShardedMethod::BiCgStab };
        let run = |s: usize| {
            let mut cfg = ShardedRunConfig::new(s, method);
            cfg.max_iterations = 20;
            cfg.rtol = 1e-30;
            cfg.reduce_block = block;
            run_sharded(&a, &b, &cfg)
        };
        let base = run(1);
        let other = run(shards);
        prop_assert_eq!(other.iterations, base.iterations);
        for (x, y) in other.residual_trace.iter().zip(&base.residual_trace) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in other.solution.as_slice().iter().zip(base.solution.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Jacobi too: the stationary loop shares the same halo/reduction
    /// plumbing and must obey the same contract.
    #[test]
    fn jacobi_traces_are_shard_count_invariant(
        edge in 4usize..7,
        shards in 2usize..5,
    ) {
        let a = poisson3d(edge);
        let b = Vector::filled(a.nrows(), 1.0);
        let run = |s: usize| {
            let mut cfg = ShardedRunConfig::new(s, ShardedMethod::Jacobi);
            cfg.max_iterations = 15;
            cfg.rtol = 1e-30;
            cfg.reduce_block = 16;
            run_sharded(&a, &b, &cfg)
        };
        let base = run(1);
        let other = run(shards);
        for (x, y) in other.residual_trace.iter().zip(&base.residual_trace) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
