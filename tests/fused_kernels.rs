//! Property and golden tests of the fused solver kernels.
//!
//! Two contracts are pinned here:
//!
//! 1. **Equivalence** — every fused kernel matches its unfused composition
//!    (separate SpMV / dot / axpy / norm sweeps) within tight floating-point
//!    tolerance, and the elementwise ones match exactly;
//! 2. **Determinism** — every fused kernel is bit-identical whether it runs
//!    on 1 thread or the whole pool (chunk partitions depend only on data
//!    shape; partials combine in chunk order).
//!
//! Plus the golden solver-level check: CG on a fixed Poisson system
//! converges in exactly the same number of iterations as an unfused
//! reference implementation of the same recurrence.

use lossy_ckpt::solvers::{
    BiCgStab, ConjugateGradient, IterativeMethod, LinearSystem, StoppingCriteria,
};
use lossy_ckpt::sparse::poisson::{manufactured_rhs, poisson2d, poisson3d};
use lossy_ckpt::sparse::vector::dot;
use lossy_ckpt::sparse::{kernels, CsrMatrix, Vector, PAR_THRESHOLD};
use proptest::prelude::*;

/// Gives this test binary a multi-thread pool even on single-core hosts,
/// unless the CI matrix pinned the size via `LCR_NUM_THREADS`.
fn ensure_pool() {
    if std::env::var("LCR_NUM_THREADS").is_err() {
        rayon::initialize_pool(4);
    }
}

/// Runs `f` with the calling thread's parallelism capped to `threads`
/// (0 = the whole pool).
fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    rayon::set_max_active_threads(threads);
    let out = f();
    rayon::set_max_active_threads(0);
    out
}

fn random_vector(len: usize, seed: u64) -> Vector {
    let mut v = Vector::zeros(len);
    v.fill_random(seed, -1.0, 1.0);
    v
}

/// Tridiagonal matrix with `n` rows (≈ `3n` non-zeros: above the SpMV
/// parallel threshold for the lengths used below, non-uniform row widths).
fn banded(n: usize) -> CsrMatrix {
    let mut indptr = Vec::with_capacity(n + 1);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    indptr.push(0usize);
    for i in 0..n {
        if i > 0 {
            indices.push(i - 1);
            values.push(1.0);
        }
        indices.push(i);
        values.push(-2.0);
        if i + 1 < n {
            indices.push(i + 1);
            values.push(1.0);
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_raw_unchecked(n, n, indptr, indices, values)
}

fn assert_bits_eq(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn spmv_dot_matches_composition_and_is_thread_invariant(
        extra in 0usize..6_000,
        seed in 1u64..1_000,
    ) {
        ensure_pool();
        let n = PAR_THRESHOLD + 64 + extra;
        let a = banded(n);
        let x = random_vector(n, seed);
        let w = random_vector(n, seed + 7);

        let mut y1 = Vector::zeros(n);
        let d1 = with_threads(1, || kernels::spmv_dot(&a, &x, y1.as_mut_slice(), &w));
        let mut yn = Vector::zeros(n);
        let dn = with_threads(0, || kernels::spmv_dot(&a, &x, yn.as_mut_slice(), &w));
        prop_assert_eq!(d1.to_bits(), dn.to_bits());
        assert_bits_eq(&y1, &yn);

        // Unfused composition: separate SpMV and dot sweeps.
        let y_ref = a.mul_vec(&x);
        assert_bits_eq(&y1, &y_ref);
        let d_ref = w.dot(&y_ref);
        prop_assert!((d1 - d_ref).abs() <= 1e-10 * d_ref.abs().max(1.0));
    }

    #[test]
    fn residual_norm2_matches_composition_and_is_thread_invariant(
        extra in 0usize..6_000,
        seed in 1u64..1_000,
    ) {
        ensure_pool();
        let n = PAR_THRESHOLD + 64 + extra;
        let a = banded(n);
        let x = random_vector(n, seed);
        let b = random_vector(n, seed + 13);

        let mut r1 = Vector::zeros(n);
        let n1 = with_threads(1, || kernels::residual_norm2(&a, &x, &b, r1.as_mut_slice()));
        let mut rn = Vector::zeros(n);
        let nn = with_threads(0, || kernels::residual_norm2(&a, &x, &b, rn.as_mut_slice()));
        prop_assert_eq!(n1.to_bits(), nn.to_bits());
        assert_bits_eq(&r1, &rn);

        // Unfused composition: SpMV, subtraction sweep, norm sweep.
        let mut r_ref = a.mul_vec(&x);
        for (ri, bi) in r_ref.iter_mut().zip(b.iter()) {
            *ri = bi - *ri;
        }
        assert_bits_eq(&r1, &r_ref);
        let nrm_ref = r_ref.dot(&r_ref);
        prop_assert!((n1 - nrm_ref).abs() <= 1e-10 * nrm_ref.max(1.0));
    }

    #[test]
    fn fused_vector_kernels_match_compositions_and_are_thread_invariant(
        extra in 0usize..8_000,
        seed in 1u64..1_000,
        alpha in -2.0f64..2.0,
    ) {
        ensure_pool();
        let n = PAR_THRESHOLD + 17 + extra;
        let p = random_vector(n, seed);
        let q = random_vector(n, seed + 1);
        let x0 = random_vector(n, seed + 2);
        let r0 = random_vector(n, seed + 3);

        // axpy2_norm2 at 1 vs N threads.
        let (mut x1, mut r1) = (x0.clone(), r0.clone());
        let rr1 = with_threads(1, || {
            kernels::axpy2_norm2(alpha, &p, &q, x1.as_mut_slice(), r1.as_mut_slice())
        });
        let (mut xn, mut rn) = (x0.clone(), r0.clone());
        let rrn = with_threads(0, || {
            kernels::axpy2_norm2(alpha, &p, &q, xn.as_mut_slice(), rn.as_mut_slice())
        });
        prop_assert_eq!(rr1.to_bits(), rrn.to_bits());
        assert_bits_eq(&x1, &xn);
        assert_bits_eq(&r1, &rn);
        // Unfused composition: two axpys and a dot.
        let (mut x_ref, mut r_ref) = (x0.clone(), r0.clone());
        x_ref.axpy(alpha, &p);
        r_ref.axpy(-alpha, &q);
        assert_bits_eq(&x1, &x_ref);
        assert_bits_eq(&r1, &r_ref);
        prop_assert_eq!(rr1.to_bits(), r_ref.dot(&r_ref).to_bits());

        // waxpy_norm2.
        let mut out1 = Vector::zeros(n);
        let s1 = with_threads(1, || {
            kernels::waxpy_norm2(out1.as_mut_slice(), &p, alpha, &q)
        });
        let mut outn = Vector::zeros(n);
        let sn = with_threads(0, || {
            kernels::waxpy_norm2(outn.as_mut_slice(), &p, alpha, &q)
        });
        prop_assert_eq!(s1.to_bits(), sn.to_bits());
        assert_bits_eq(&out1, &outn);
        let mut out_ref = p.clone();
        out_ref.axpy(alpha, &q);
        assert_bits_eq(&out1, &out_ref);
        prop_assert_eq!(s1.to_bits(), out_ref.dot(&out_ref).to_bits());

        // dot2 against two separate dots (shared chunking → identical bits).
        let (da, db) = with_threads(0, || kernels::dot2(&p, &q, &x0));
        prop_assert_eq!(da.to_bits(), dot(&p, &q).to_bits());
        prop_assert_eq!(db.to_bits(), dot(&p, &x0).to_bits());
        let (da1, db1) = with_threads(1, || kernels::dot2(&p, &q, &x0));
        prop_assert_eq!(da1.to_bits(), da.to_bits());
        prop_assert_eq!(db1.to_bits(), db.to_bits());

        // axpy_norm2.
        let mut y1 = r0.clone();
        let t1 = with_threads(1, || kernels::axpy_norm2(alpha, &p, y1.as_mut_slice()));
        let mut y_n = r0.clone();
        let tn = with_threads(0, || kernels::axpy_norm2(alpha, &p, y_n.as_mut_slice()));
        prop_assert_eq!(t1.to_bits(), tn.to_bits());
        assert_bits_eq(&y1, &y_n);
        let mut y_ref = r0.clone();
        y_ref.axpy(alpha, &p);
        assert_bits_eq(&y1, &y_ref);
        prop_assert_eq!(t1.to_bits(), y_ref.dot(&y_ref).to_bits());
    }

    #[test]
    fn elementwise_fused_kernels_match_chains_exactly(
        extra in 0usize..8_000,
        seed in 1u64..1_000,
        beta in -1.5f64..1.5,
        omega in -1.0f64..1.0,
    ) {
        ensure_pool();
        let n = PAR_THRESHOLD + 9 + extra;
        let r = random_vector(n, seed);
        let v = random_vector(n, seed + 4);
        let p0 = random_vector(n, seed + 5);

        // bicgstab_p_update == axpy + scale + axpy, at 1 vs N threads.
        let mut p1 = p0.clone();
        with_threads(1, || {
            kernels::bicgstab_p_update(p1.as_mut_slice(), &r, &v, beta, omega)
        });
        let mut p_n = p0.clone();
        with_threads(0, || {
            kernels::bicgstab_p_update(p_n.as_mut_slice(), &r, &v, beta, omega)
        });
        assert_bits_eq(&p1, &p_n);
        let mut p_ref = p0.clone();
        p_ref.axpy(-omega, &v);
        p_ref.scale(beta);
        p_ref.axpy(1.0, &r);
        assert_bits_eq(&p1, &p_ref);

        // axpy2 == two axpys.
        let mut y = p0.clone();
        with_threads(0, || kernels::axpy2(y.as_mut_slice(), beta, &r, omega, &v));
        let mut y_ref = p0.clone();
        y_ref.axpy(beta, &r);
        y_ref.axpy(omega, &v);
        assert_bits_eq(&y, &y_ref);

        // axpby and scale_into.
        let mut z = p0.clone();
        with_threads(0, || kernels::axpby(beta, &r, omega, z.as_mut_slice()));
        for i in 0..n {
            prop_assert_eq!(z[i].to_bits(), (beta * r[i] + omega * p0[i]).to_bits());
        }
        let mut sc = Vector::zeros(n);
        with_threads(0, || kernels::scale_into(sc.as_mut_slice(), beta, &r));
        for i in 0..n {
            prop_assert_eq!(sc[i].to_bits(), (beta * r[i]).to_bits());
        }
    }

    #[test]
    fn jacobi_sweep_is_thread_invariant(
        extra in 0usize..4_000,
        seed in 1u64..1_000,
    ) {
        ensure_pool();
        let n = PAR_THRESHOLD + 25 + extra;
        let a = banded(n);
        let x = random_vector(n, seed);
        let b = random_vector(n, seed + 6);
        let mut out1 = Vector::zeros(n);
        with_threads(1, || kernels::jacobi_sweep(&a, &x, &b, out1.as_mut_slice()));
        let mut outn = Vector::zeros(n);
        with_threads(0, || kernels::jacobi_sweep(&a, &x, &b, outn.as_mut_slice()));
        assert_bits_eq(&out1, &outn);
    }
}

/// Unfused reference CG (the seed composition: separate SpMV, dot, axpy,
/// axpy, identity-preconditioner copy, dot, xpby, norm sweeps), used as the
/// "before fusion" side of the golden iteration-count test.
fn unfused_cg_iterations(system: &LinearSystem, rtol: f64, max_iters: usize) -> (usize, f64) {
    let n = system.dim();
    let reference_norm = system.b.norm2();
    let mut x = Vector::zeros(n);
    let mut r = system.a.residual(&x, &system.b);
    let mut residual_norm = r.norm2();
    let mut z = r.clone();
    let mut rho = r.dot(&z);
    let mut p = z.clone();
    let mut q = Vector::zeros(n);
    let mut iters = 0usize;
    while residual_norm > rtol * reference_norm && iters < max_iters {
        system.a.spmv(p.as_slice(), q.as_mut_slice());
        let pq = p.dot(&q);
        let alpha = rho / pq;
        x.axpy(alpha, &p);
        r.axpy(-alpha, &q);
        z.copy_from(&r);
        let rho_next = r.dot(&z);
        let beta = rho_next / rho;
        rho = rho_next;
        p.xpby(&z, beta);
        iters += 1;
        residual_norm = r.norm2();
    }
    (iters, residual_norm)
}

/// Golden test: CG on a fixed Poisson system must converge in exactly the
/// same number of iterations before and after kernel fusion.
#[test]
fn cg_iteration_count_is_unchanged_by_fusion() {
    ensure_pool();
    for (system, golden) in [
        // (negated 2-D Poisson 24², rtol 1e-10) — 86 iterations.
        (spd_poisson2d(24), 86usize),
        // (negated 3-D Poisson 12³, rtol 1e-10) — 55 iterations.
        (spd_poisson3d(12), 55usize),
    ] {
        let rtol = 1e-10;
        let n = system.dim();
        let mut fused = ConjugateGradient::unpreconditioned(
            system.clone(),
            Vector::zeros(n),
            StoppingCriteria::new(rtol, 100_000),
        );
        let fused_iters = fused.run_to_convergence();
        let (unfused_iters, unfused_norm) = unfused_cg_iterations(&system, rtol, 100_000);
        assert_eq!(
            fused_iters, unfused_iters,
            "fusion changed the CG iteration count on a fixed system"
        );
        assert_eq!(fused_iters, golden, "golden iteration count drifted");
        // Both converged to the same tolerance.
        assert!(fused.converged());
        assert!(unfused_norm <= rtol * system.b.norm2());
        // And the count is thread-invariant.
        let mut one_thread = ConjugateGradient::unpreconditioned(
            system.clone(),
            Vector::zeros(n),
            StoppingCriteria::new(rtol, 100_000),
        );
        let one_iters = with_threads(1, || one_thread.run_to_convergence());
        assert_eq!(one_iters, fused_iters);
        for (a, b) in fused
            .history()
            .residuals()
            .iter()
            .zip(one_thread.history().residuals())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// Order-sensitive bit fingerprint of a residual trace.
fn trace_fingerprint(trace: &[f64]) -> u64 {
    trace
        .iter()
        .fold(0u64, |h, v| h.rotate_left(13) ^ v.to_bits())
}

/// Golden test: BiCGStab on fixed Poisson systems (paper sign, rtol 1e-10)
/// must keep its exact iteration count **and** its bit-exact residual
/// trace across kernel-layer changes — the trace fingerprints below were
/// recorded when the lane-vectorized kernels landed and pin the
/// reduction/update order end to end.  Also asserts the trace is
/// thread-invariant (1 thread vs the whole pool).
#[test]
fn bicgstab_iterations_and_trace_are_pinned() {
    ensure_pool();
    for (system, golden_iters, golden_fp) in [
        // 2-D Poisson 24² — 64 iterations.
        (plain_poisson2d(24), 64usize, 0x50b79b4f8613c1adu64),
        // 3-D Poisson 12³ — 41 iterations.
        (plain_poisson3d(12), 41usize, 0xfeb94bc196810d04u64),
    ] {
        let n = system.dim();
        let criteria = StoppingCriteria::new(1e-10, 100_000);
        let mut solver =
            BiCgStab::unpreconditioned(system.clone(), Vector::zeros(n), criteria);
        let iters = solver.run_to_convergence();
        assert!(solver.converged());
        assert_eq!(iters, golden_iters, "golden BiCGStab iteration count drifted");
        assert_eq!(
            trace_fingerprint(solver.history().residuals()),
            golden_fp,
            "golden BiCGStab residual trace drifted"
        );

        let mut one_thread =
            BiCgStab::unpreconditioned(system.clone(), Vector::zeros(n), criteria);
        let one_iters = with_threads(1, || one_thread.run_to_convergence());
        assert_eq!(one_iters, iters);
        for (a, b) in solver
            .history()
            .residuals()
            .iter()
            .zip(one_thread.history().residuals())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// Paper-sign (non-negated) systems for the BiCGStab golden test.
fn plain_poisson2d(n: usize) -> LinearSystem {
    let a = poisson2d(n);
    let (_, b) = manufactured_rhs(&a);
    LinearSystem::new(a, b)
}

fn plain_poisson3d(n: usize) -> LinearSystem {
    let a = poisson3d(n);
    let (_, b) = manufactured_rhs(&a);
    LinearSystem::new(a, b)
}

fn spd_poisson2d(n: usize) -> LinearSystem {
    let mut a = poisson2d(n);
    for v in a.values_mut() {
        *v = -*v;
    }
    let (_, b) = manufactured_rhs(&a);
    LinearSystem::new(a, b)
}

fn spd_poisson3d(n: usize) -> LinearSystem {
    let mut a = poisson3d(n);
    for v in a.values_mut() {
        *v = -*v;
    }
    let (_, b) = manufactured_rhs(&a);
    LinearSystem::new(a, b)
}
