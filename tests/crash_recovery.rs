//! End-to-end crash-recovery: a run writing durable checkpoints is killed
//! mid-stream, then a *fresh* `FaultTolerantRunner` (a stand-in for a new
//! process) reopens the directory, validates CRCs, resumes from the newest
//! *complete* checkpoint and drives the solver to convergence.  An
//! interrupted (partially written) or CRC-corrupt checkpoint must never be
//! selected.
//!
//! CI runs this file at `LCR_NUM_THREADS=1` and `=4`; the deterministic
//! kernels make every assertion thread-count independent.

use lossy_ckpt::ckpt::{CheckpointLevel, ClusterConfig, PfsModel};
use lossy_ckpt::core::runner::{ExecutionBackend, FaultTolerantRunner, Persistence, RunConfig, RunReport};
use lossy_ckpt::core::strategy::CheckpointStrategy;
use lossy_ckpt::core::workload::PaperWorkload;
use lossy_ckpt::solvers::SolverKind;
use std::fs;
use std::path::{Path, PathBuf};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lcr-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config(
    strategy: CheckpointStrategy,
    dir: &Path,
    write_behind: bool,
    max_executed_iterations: usize,
) -> RunConfig {
    RunConfig {
        strategy,
        checkpoint_interval_iterations: 10,
        anchor_interval_snapshots: 0,
        cluster: ClusterConfig::bebop_like(256, 0.5),
        pfs: PfsModel::bebop_like(),
        level: CheckpointLevel::Pfs,
        mtti_seconds: f64::MAX,
        failure_seed: None,
        max_failures: 0,
        max_executed_iterations,
        num_threads: 0,
        persistence: if write_behind {
            Persistence::disk_write_behind(dir)
        } else {
            Persistence::disk(dir)
        },
        backend: ExecutionBackend::Simulated,
    }
}

/// Phase 1 of every scenario: run with durable checkpoints but stop the
/// process (`max_executed_iterations` cap) mid-run, like a crash between
/// two checkpoints.  Returns the interrupted run's report.
fn crashed_run(
    workload: &PaperWorkload,
    strategy: CheckpointStrategy,
    dir: &Path,
    write_behind: bool,
    cap: usize,
) -> RunReport {
    let problem = workload.build();
    let mut solver = workload.build_solver(&problem, SolverKind::Jacobi, 200_000);
    let report = FaultTolerantRunner::new(config(strategy, dir, write_behind, cap))
        .run(solver.as_mut(), &problem);
    assert!(
        report.resumed_from_iteration.is_none(),
        "phase 1 starts from scratch"
    );
    assert!(report.checkpoints_taken >= 2, "need checkpoints on disk");
    report
}

fn checkpoint_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("checkpoint directory exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "lcr"))
        .collect();
    files.sort();
    files
}

#[test]
fn fresh_runner_resumes_from_newest_complete_checkpoint() {
    let workload = PaperWorkload::poisson(256, 8);
    let problem = workload.build();
    let dir = tempdir("resume");

    // Reference: the same workload run to convergence without any crash.
    let mut reference = workload.build_solver(&problem, SolverKind::Jacobi, 200_000);
    reference.run_to_convergence();
    let reference_iters = reference.iteration();

    // Phase 1: killed after 35 iterations — checkpoints at 10, 20, 30
    // written, retention keeps the newest two (20, 30).
    crashed_run(&workload, CheckpointStrategy::Traditional, &dir, false, 35);
    assert_eq!(checkpoint_files(&dir).len(), 2, "retention prunes to 2");

    // Simulate a crash *mid-write* of the next checkpoint: a partial file
    // (truncated copy of the newest) under a newer id.  FTI atomicity says
    // it must never be picked.
    let newest = checkpoint_files(&dir).pop().unwrap();
    let bytes = fs::read(&newest).unwrap();
    fs::write(dir.join("ckpt-4000000000.lcr"), &bytes[..bytes.len() / 2]).unwrap();

    // Phase 2: a fresh runner + fresh solver over the same directory.
    let mut solver = workload.build_solver(&problem, SolverKind::Jacobi, 200_000);
    let report = FaultTolerantRunner::new(config(
        CheckpointStrategy::Traditional,
        &dir,
        false,
        500_000,
    ))
    .run(solver.as_mut(), &problem);

    assert_eq!(
        report.resumed_from_iteration,
        Some(30),
        "must resume from the newest complete checkpoint, not the partial one"
    );
    assert!(!report.hit_iteration_limit);
    assert!(solver.converged());
    // Traditional checkpoints restore the full dynamic state exactly, so
    // the resumed run finishes at the uninterrupted iteration count and
    // only re-executes the post-checkpoint tail.
    assert_eq!(report.convergence_iterations, reference_iters);
    assert_eq!(report.executed_iterations, reference_iters - 30);
    // The resume read is charged to the simulated clock.
    assert!(report.recovery_seconds > 0.0);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn crc_corrupt_newest_checkpoint_falls_back_to_older_one() {
    let workload = PaperWorkload::poisson(256, 8);
    let problem = workload.build();
    let dir = tempdir("crcfallback");
    crashed_run(&workload, CheckpointStrategy::Traditional, &dir, false, 35);

    // Bit-flip one payload byte of the newest (iteration-30) checkpoint.
    let newest = checkpoint_files(&dir).pop().unwrap();
    let mut bytes = fs::read(&newest).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x10;
    fs::write(&newest, &bytes).unwrap();

    let mut solver = workload.build_solver(&problem, SolverKind::Jacobi, 200_000);
    let report = FaultTolerantRunner::new(config(
        CheckpointStrategy::Traditional,
        &dir,
        false,
        500_000,
    ))
    .run(solver.as_mut(), &problem);
    assert_eq!(
        report.resumed_from_iteration,
        Some(20),
        "CRC validation must skip the bit-flipped newest checkpoint"
    );
    assert!(!report.hit_iteration_limit);
    assert!(solver.converged());

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn write_behind_lossy_run_resumes_and_converges() {
    let workload = PaperWorkload::poisson(256, 8);
    let problem = workload.build();
    let dir = tempdir("writebehind");

    // Phase 1 with the background I/O thread: dropping the runner joins
    // the in-flight write, so the newest checkpoint is complete on disk.
    crashed_run(&workload, CheckpointStrategy::lossy_default(), &dir, true, 35);
    assert!(!checkpoint_files(&dir).is_empty());

    let mut solver = workload.build_solver(&problem, SolverKind::Jacobi, 200_000);
    let report = FaultTolerantRunner::new(config(
        CheckpointStrategy::lossy_default(),
        &dir,
        true,
        500_000,
    ))
    .run(solver.as_mut(), &problem);
    assert_eq!(report.resumed_from_iteration, Some(30));
    assert!(!report.hit_iteration_limit);
    assert!(solver.converged());
    // Lossy resume restarts from the (error-bounded) solution vector; the
    // restart is recorded in the solver history.
    assert_eq!(solver.history().restarts(), &[30]);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mismatched_strategy_tag_starts_fresh_but_still_converges() {
    let workload = PaperWorkload::poisson(256, 8);
    let problem = workload.build();
    let dir = tempdir("tagmismatch");
    crashed_run(&workload, CheckpointStrategy::Traditional, &dir, false, 35);

    // A lossy-strategy runner cannot decode traditional payload layouts;
    // the tag check refuses the resume and the run starts from scratch.
    let mut solver = workload.build_solver(&problem, SolverKind::Jacobi, 200_000);
    let report = FaultTolerantRunner::new(config(
        CheckpointStrategy::lossy_default(),
        &dir,
        false,
        500_000,
    ))
    .run(solver.as_mut(), &problem);
    assert_eq!(report.resumed_from_iteration, None);
    assert!(!report.hit_iteration_limit);
    assert!(solver.converged());

    let _ = fs::remove_dir_all(&dir);
}

/// Delta-enabled lossy config: checkpoints every 5 iterations with an
/// anchor every 4 snapshots and temporal deltas in between.
fn delta_config(dir: &Path, max_executed_iterations: usize) -> RunConfig {
    let mut cfg = config(
        CheckpointStrategy::lossy_default(),
        dir,
        false,
        max_executed_iterations,
    );
    cfg.checkpoint_interval_iterations = 5;
    cfg.anchor_interval_snapshots = 4;
    cfg
}

/// Phase 1 of the delta scenarios: crash at iteration 63, after the
/// checkpoints at 5, 10, …, 60.  A forced anchor lands every 4th snapshot
/// (iterations 5, 25, 45); early deltas lose to their anchors (the
/// solution still moves fast) so the encoder keeps direct coding at
/// first, while the late snapshots delta-code.  Chain-aware retention
/// leaves exactly anchor(45) → delta(50) → delta(55) → delta(60) on
/// disk.  Asserts that structure and returns the sorted file paths.
fn crashed_delta_run(workload: &PaperWorkload, dir: &Path) -> Vec<PathBuf> {
    let problem = workload.build();
    let mut solver = workload.build_solver(&problem, SolverKind::Jacobi, 200_000);
    let report =
        FaultTolerantRunner::new(delta_config(dir, 63)).run(solver.as_mut(), &problem);
    assert_eq!(report.checkpoints_taken, 12);
    assert_eq!(
        report.anchor_checkpoints + report.delta_checkpoints,
        report.checkpoints_taken
    );
    assert!(report.delta_checkpoints >= 3, "the late snapshots delta-code");
    // Chain-aware retention: the retain-2 window stretches so the chain
    // the newest checkpoint depends on survives complete.
    let files = checkpoint_files(dir);
    assert_eq!(files.len(), 4, "anchor(45) + three deltas stay on disk");
    for (i, path) in files.iter().enumerate() {
        let ckpt = lossy_ckpt::ckpt::disk::read_checkpoint_file(path).unwrap();
        assert_eq!(ckpt.metadata.iteration, 45 + 5 * i);
        assert_eq!(ckpt.metadata.encoding.is_delta(), i > 0);
    }
    files
}

#[test]
fn fresh_runner_resumes_from_a_mid_chain_delta_checkpoint() {
    let workload = PaperWorkload::poisson(256, 8);
    let problem = workload.build();
    let dir = tempdir("deltaresume");
    crashed_delta_run(&workload, &dir);

    // Phase 2: the fresh runner must replay anchor(45) → … → delta(60).
    let mut solver = workload.build_solver(&problem, SolverKind::Jacobi, 200_000);
    let report =
        FaultTolerantRunner::new(delta_config(&dir, 500_000)).run(solver.as_mut(), &problem);
    assert_eq!(
        report.resumed_from_iteration,
        Some(60),
        "resume target is the newest delta, reached by chain replay"
    );
    assert!(!report.hit_iteration_limit);
    assert!(solver.converged());
    assert_eq!(solver.history().restarts(), &[60]);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_mid_chain_delta_falls_back_to_its_ancestor_prefix() {
    let workload = PaperWorkload::poisson(256, 8);
    let problem = workload.build();
    let dir = tempdir("deltamidcorrupt");
    let files = crashed_delta_run(&workload, &dir);

    // Destroy delta(55): delta(60) loses its base and dies with it, but
    // the prefix anchor(45) → delta(50) is still a complete chain.
    let mut bytes = fs::read(&files[2]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&files[2], &bytes).unwrap();

    let mut solver = workload.build_solver(&problem, SolverKind::Jacobi, 200_000);
    let report =
        FaultTolerantRunner::new(delta_config(&dir, 500_000)).run(solver.as_mut(), &problem);
    assert_eq!(
        report.resumed_from_iteration,
        Some(50),
        "a corrupt mid-chain delta invalidates dependents, not ancestors"
    );
    assert!(!report.hit_iteration_limit);
    assert!(solver.converged());

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_chain_anchor_kills_every_dependent_and_starts_fresh() {
    let workload = PaperWorkload::poisson(256, 8);
    let problem = workload.build();
    let dir = tempdir("deltaanchorcorrupt");
    let files = crashed_delta_run(&workload, &dir);

    // Destroy the anchor: every delta in the chain is now undecodable, so
    // the run starts from scratch — never from a half-replayable chain.
    let mut bytes = fs::read(&files[0]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&files[0], &bytes).unwrap();

    let mut solver = workload.build_solver(&problem, SolverKind::Jacobi, 200_000);
    let report =
        FaultTolerantRunner::new(delta_config(&dir, 500_000)).run(solver.as_mut(), &problem);
    assert_eq!(report.resumed_from_iteration, None);
    assert!(!report.hit_iteration_limit);
    assert!(solver.converged());

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn all_checkpoints_corrupt_means_scratch_start() {
    let workload = PaperWorkload::poisson(256, 8);
    let problem = workload.build();
    let dir = tempdir("allcorrupt");
    crashed_run(&workload, CheckpointStrategy::Traditional, &dir, false, 35);

    for path in checkpoint_files(&dir) {
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
    }

    let mut solver = workload.build_solver(&problem, SolverKind::Jacobi, 200_000);
    let report = FaultTolerantRunner::new(config(
        CheckpointStrategy::Traditional,
        &dir,
        false,
        500_000,
    ))
    .run(solver.as_mut(), &problem);
    assert_eq!(report.resumed_from_iteration, None);
    assert!(!report.hit_iteration_limit);
    assert!(solver.converged());

    let _ = fs::remove_dir_all(&dir);
}
