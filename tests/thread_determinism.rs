//! Property tests of the execution layer's determinism guarantee: because
//! the rayon shim splits work into chunks that depend only on the data
//! length and combines partial results in chunk order, `dot`, `norm2`,
//! `spmv` and SZ compression/decompression are **bit-identical** whether
//! they run on 1 thread or on the whole pool.

use lossy_ckpt::compress::{ErrorBound, LossyCompressor, SzCompressor};
use lossy_ckpt::sparse::vector::{dot, norm2};
use lossy_ckpt::sparse::{CsrMatrix, Vector, PAR_THRESHOLD};
use proptest::prelude::*;

/// Gives this test binary a multi-thread pool even on single-core hosts,
/// unless the CI matrix pinned the size via `LCR_NUM_THREADS`.
fn ensure_pool() {
    if std::env::var("LCR_NUM_THREADS").is_err() {
        rayon::initialize_pool(4);
    }
}

/// Runs `f` with the calling thread's parallelism capped to `threads`
/// (0 = the whole pool).
fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    rayon::set_max_active_threads(threads);
    let out = f();
    rayon::set_max_active_threads(0);
    out
}

/// A vector long enough that every BLAS-1 kernel takes its parallel path.
fn random_vector(len: usize, seed: u64) -> Vector {
    let mut v = Vector::zeros(len);
    v.fill_random(seed, -10.0, 10.0);
    v
}

/// Tridiagonal test matrix with `n` rows (≈ `3n` non-zeros, above the SpMV
/// parallel threshold for the lengths used below).
fn banded(n: usize) -> CsrMatrix {
    let mut indptr = Vec::with_capacity(n + 1);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    indptr.push(0usize);
    for i in 0..n {
        if i > 0 {
            indices.push(i - 1);
            values.push(1.0);
        }
        indices.push(i);
        values.push(-2.0);
        if i + 1 < n {
            indices.push(i + 1);
            values.push(1.0);
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_raw_unchecked(n, n, indptr, indices, values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn dot_and_norm2_bit_identical_at_1_vs_n_threads(
        extra in 0usize..8_000,
        seed in 1u64..1_000,
    ) {
        ensure_pool();
        let len = PAR_THRESHOLD + 17 + extra;
        let a = random_vector(len, seed);
        let b = random_vector(len, seed.wrapping_mul(31).wrapping_add(7));

        let dot_1 = with_threads(1, || dot(a.as_slice(), b.as_slice()));
        let dot_n = with_threads(0, || dot(a.as_slice(), b.as_slice()));
        prop_assert_eq!(dot_1.to_bits(), dot_n.to_bits());

        let norm_1 = with_threads(1, || norm2(a.as_slice()));
        let norm_n = with_threads(0, || norm2(a.as_slice()));
        prop_assert_eq!(norm_1.to_bits(), norm_n.to_bits());
    }

    #[test]
    fn spmv_bit_identical_at_1_vs_n_threads(
        extra in 0usize..6_000,
        seed in 1u64..1_000,
    ) {
        ensure_pool();
        let n = PAR_THRESHOLD + 100 + extra;
        let a = banded(n);
        prop_assert!(a.nnz() >= PAR_THRESHOLD);
        let x = random_vector(n, seed);

        let y_1 = with_threads(1, || a.mul_vec(&x));
        let y_n = with_threads(0, || a.mul_vec(&x));
        for (v1, vn) in y_1.iter().zip(y_n.iter()) {
            prop_assert_eq!(v1.to_bits(), vn.to_bits());
        }
    }

    #[test]
    fn sz_compress_decompress_bit_identical_at_1_vs_n_threads(
        len in 130_000usize..200_000,
        seed in 1u64..1_000,
        phase in 0.0f64..std::f64::consts::TAU,
    ) {
        ensure_pool();
        // Smooth signal with a rough tail so both the predictable and the
        // unpredictable encoding paths are exercised across blocks.
        let mut data: Vec<f64> = (0..len)
            .map(|i| {
                let t = i as f64 / len as f64;
                (20.0 * t + phase).sin() + 0.1 * (301.0 * t).cos()
            })
            .collect();
        let noise = random_vector(4_096, seed);
        for (d, n) in data.iter_mut().zip(noise.iter()) {
            *d += n * 1e-3;
        }

        let sz = SzCompressor::new();
        let bound = ErrorBound::Abs(1e-6);
        let c_1 = with_threads(1, || sz.compress(&data, bound).unwrap());
        let c_n = with_threads(0, || sz.compress(&data, bound).unwrap());
        prop_assert_eq!(&c_1.bytes, &c_n.bytes, "compressed streams differ across thread counts");

        let d_1 = with_threads(1, || sz.decompress(&c_1).unwrap());
        let d_n = with_threads(0, || sz.decompress(&c_1).unwrap());
        prop_assert_eq!(d_1.len(), data.len());
        for (v1, vn) in d_1.iter().zip(d_n.iter()) {
            prop_assert_eq!(v1.to_bits(), vn.to_bits());
        }
        // And the error bound still holds on the parallel-decoded output.
        for (orig, rest) in data.iter().zip(d_n.iter()) {
            prop_assert!((orig - rest).abs() <= 1e-6 * (1.0 + 1e-12));
        }
    }
}
