//! §4.4.4 of the paper: lossy checkpointing breaks bit-level
//! reproducibility but preserves tolerance-based reproducibility — every
//! run still converges to a solution within the user-set accuracy, and the
//! spread between runs is far below the convergence tolerance.

use lossy_ckpt::compress::{ErrorBound, LossyCompressor, SzCompressor};
use lossy_ckpt::core::strategy::CheckpointStrategy;
use lossy_ckpt::core::workload::PaperWorkload;
use lossy_ckpt::solvers::SolverKind;
use lossy_ckpt::sparse::Vector;

const EDGE: usize = 8;
const MAX_ITERS: usize = 200_000;

/// Runs a solver to convergence with one lossy recovery at `restart_at`,
/// returning the final solution.
fn solve_with_one_lossy_recovery(
    kind: SolverKind,
    restart_at_fraction: f64,
) -> (Vector, Vector, f64) {
    let workload = PaperWorkload::poisson(2048, EDGE);
    let problem = workload.build();

    let mut clean = workload.build_solver(&problem, kind, MAX_ITERS);
    clean.run_to_convergence();
    let clean_iters = clean.iteration();

    let mut solver = workload.build_solver(&problem, kind, MAX_ITERS);
    let restart_at = ((clean_iters as f64) * restart_at_fraction) as usize;
    for _ in 0..restart_at.max(1) {
        solver.step();
    }
    let strategy = if kind == SolverKind::Gmres {
        CheckpointStrategy::lossy_gmres()
    } else {
        CheckpointStrategy::lossy_default()
    };
    let enc = strategy.encode(solver.as_ref()).unwrap();
    strategy
        .recover(solver.as_mut(), &enc.payloads, enc.iteration, &enc.scalars)
        .unwrap();
    solver.run_to_convergence();
    assert!(!solver.history().limit_reached, "{kind:?} failed to converge");

    let tolerance = lossy_ckpt::core::workload::paper_rtol(kind);
    (
        clean.solution().clone(),
        solver.solution().clone(),
        tolerance,
    )
}

#[test]
fn lossy_runs_converge_within_tolerance_for_all_solvers() {
    for kind in [SolverKind::Jacobi, SolverKind::Cg, SolverKind::Gmres] {
        let workload = PaperWorkload::poisson(2048, EDGE);
        let problem = workload.build();
        let (clean, lossy, _tol) = solve_with_one_lossy_recovery(kind, 0.5);
        // Both solutions satisfy the solver's convergence criterion; their
        // difference is bounded by the achievable accuracy, not by the
        // compression error at the restart point.
        let b_norm = problem.system.b.norm2();
        let clean_res = problem.system.a.residual(&clean, &problem.system.b).norm2() / b_norm;
        // The lossy run solved the same operator family (CG solves the
        // negated SPD system), so compare through the clean/lossy solution
        // difference instead of re-assembling the residual for both.
        let diff = clean.max_abs_diff(&lossy);
        let scale = clean.norm_inf().max(1e-30);
        assert!(
            diff / scale < 1e-2,
            "{kind:?}: solutions differ by {diff} (relative {})",
            diff / scale
        );
        assert!(clean_res.is_finite());
    }
}

#[test]
fn bit_level_reproducibility_is_lost_but_variance_is_tiny() {
    // Two lossy runs restarting at different points give different bit
    // patterns (bit-level reproducibility is broken) …
    let (_, lossy_a, tol) = solve_with_one_lossy_recovery(SolverKind::Cg, 0.4);
    let (_, lossy_b, _) = solve_with_one_lossy_recovery(SolverKind::Cg, 0.6);
    let identical = lossy_a
        .iter()
        .zip(lossy_b.iter())
        .all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(
        !identical,
        "two lossy executions should not be bit-identical"
    );
    // … but the variance between them is tiny — far below the 1e-2-level
    // accuracy the application observes, and on the order of what the
    // convergence tolerance permits once the conditioning of the operator
    // is taken into account (tolerance-based reproducibility, §4.4.4).
    let diff = lossy_a.max_abs_diff(&lossy_b);
    let scale = lossy_a.norm_inf().max(1e-30);
    assert!(
        diff / scale < 1e-3,
        "spread {} is too large for tolerance {}",
        diff / scale,
        tol
    );
}

#[test]
fn compressor_error_bound_holds_on_actual_solver_state() {
    // The error-bound contract (the foundation of Theorems 2 and 3) checked
    // on a genuine solver vector rather than synthetic data.
    let workload = PaperWorkload::poisson(2048, EDGE);
    let problem = workload.build();
    let mut solver = workload.build_solver(&problem, SolverKind::Jacobi, MAX_ITERS);
    for _ in 0..25 {
        solver.step();
    }
    let x = solver.solution().clone();
    let sz = SzCompressor::new();
    for eb in [1e-3, 1e-4, 1e-6] {
        let c = sz
            .compress(x.as_slice(), ErrorBound::PointwiseRel(eb))
            .unwrap();
        let restored = sz.decompress(&c).unwrap();
        for (a, b) in x.iter().zip(restored.iter()) {
            assert!(
                (a - b).abs() <= eb * a.abs() * (1.0 + 1e-9) + 1e-300,
                "bound {eb} violated: {a} vs {b}"
            );
        }
    }
}
