//! Threaded smoke test: the umbrella CG + SZ lossy-checkpoint pipeline (the
//! `tests/umbrella_smoke.rs` flow) run from several OS threads at once, on
//! problems large enough that every kernel takes its parallel path through
//! the worker pool.  Catches `Send`/`Sync` regressions anywhere in the
//! sparse → compress → solvers stack and pool misbehaviour under
//! concurrent top-level callers.

use lossy_ckpt::compress::{ErrorBound, LossyCompressor, SzCompressor};
use lossy_ckpt::solvers::{ConjugateGradient, IterativeMethod, LinearSystem, StoppingCriteria};
use lossy_ckpt::sparse::poisson::{manufactured_rhs, poisson3d};
use lossy_ckpt::sparse::{Vector, PAR_THRESHOLD};

#[test]
fn concurrent_cg_lossy_checkpoint_roundtrips_under_pool() {
    // A multi-thread pool even on single-core hosts (unless the CI matrix
    // pinned the size via LCR_NUM_THREADS).
    if std::env::var("LCR_NUM_THREADS").is_err() {
        rayon::initialize_pool(4);
    }

    let handles: Vec<_> = (0..4)
        .map(|tid: u64| {
            std::thread::spawn(move || {
                // 32³ = 32 768 unknowns — exactly the BLAS-1 parallel
                // threshold, so dot/axpy/spmv all go through the pool.
                let mut a = poisson3d(32);
                assert!(a.nrows() >= PAR_THRESHOLD);
                // The paper's generator is negative definite; CG needs SPD.
                for v in a.values_mut() {
                    *v = -*v;
                }
                let (_xstar, b) = manufactured_rhs(&a);
                let system = LinearSystem::new(a, b);
                let n = system.dim();
                let criteria = StoppingCriteria::new(1e-8, 500);

                let mut solver = ConjugateGradient::unpreconditioned(
                    system.clone(),
                    Vector::zeros(n),
                    criteria,
                );
                for _ in 0..30 {
                    solver.step();
                }
                let mid_residual = solver.residual_norm();
                assert!(mid_residual.is_finite());

                // Lossy checkpoint of x, recover, restart (Algorithm 2).
                let eb = 1e-6;
                let sz = SzCompressor::new();
                let compressed = sz
                    .compress(solver.solution().as_slice(), ErrorBound::PointwiseRel(eb))
                    .expect("SZ compression failed");
                let restored = sz.decompress(&compressed).expect("SZ decompression failed");
                for (orig, rest) in solver.solution().iter().zip(restored.iter()) {
                    assert!(
                        (orig - rest).abs() <= eb * orig.abs() * (1.0 + 1e-9) + 1e-300,
                        "thread {tid}: SZ bound violated"
                    );
                }

                let mut recovered =
                    ConjugateGradient::unpreconditioned(system, Vector::zeros(n), criteria);
                recovered.restart_from_solution(Vector::from_vec(restored), solver.iteration());
                for _ in 0..30 {
                    recovered.step();
                }
                assert!(recovered.residual_norm().is_finite());
                assert!(
                    recovered.residual_norm() < mid_residual,
                    "thread {tid}: no progress after the lossy restart \
                     ({} vs {mid_residual})",
                    recovered.residual_norm()
                );
            })
        })
        .collect();

    for handle in handles {
        handle.join().expect("solver thread panicked");
    }
}
