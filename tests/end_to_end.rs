//! Cross-crate integration tests: the full lossy checkpointing pipeline
//! (solvers + compressors + checkpoint substrate + performance model)
//! exercised end to end through the public API of the umbrella crate.

use lossy_ckpt::ckpt::{CheckpointLevel, ClusterConfig, PfsModel};
use lossy_ckpt::core::experiment::{
    checkpoint_recovery_times, expected_overhead, table3, PAPER_PROCESS_COUNTS,
};
use lossy_ckpt::core::runner::{ExecutionBackend, FaultTolerantRunner, Persistence, RunConfig};
use lossy_ckpt::core::strategy::CheckpointStrategy;
use lossy_ckpt::core::workload::PaperWorkload;
use lossy_ckpt::perfmodel::{theorem1_max_extra_iterations, Theorem1Inputs};
use lossy_ckpt::solvers::SolverKind;

// Local grid edge: 12³ = 1,728 unknowns — large enough for the compression
// ratios measured on the solver state to be representative, small enough
// for the full matrix of solvers × schemes to run in seconds.
const EDGE: usize = 12;
const MAX_ITERS: usize = 200_000;

fn run_config(strategy: CheckpointStrategy, mtti: f64, seed: u64, t_it: f64) -> RunConfig {
    RunConfig {
        strategy,
        checkpoint_interval_iterations: 10,
        anchor_interval_snapshots: 0,
        cluster: ClusterConfig::bebop_like(2048, t_it),
        pfs: PfsModel::bebop_like(),
        level: CheckpointLevel::Pfs,
        mtti_seconds: mtti,
        failure_seed: Some(seed),
        max_failures: 200,
        max_executed_iterations: MAX_ITERS,
        num_threads: 0,
        persistence: Persistence::InMemory,
        backend: ExecutionBackend::Simulated,
    }
}

#[test]
fn all_three_solvers_survive_failures_under_all_three_schemes() {
    let workload = PaperWorkload::poisson(2048, EDGE);
    let problem = workload.build();
    for kind in [SolverKind::Jacobi, SolverKind::Gmres, SolverKind::Cg] {
        let mut baseline = workload.build_solver(&problem, kind, MAX_ITERS);
        baseline.run_to_convergence();
        let baseline_iters = baseline.iteration();
        // Calibrate the per-iteration cost so every failure-free run lasts
        // ≈400 simulated seconds: with a 60-second MTTI this guarantees
        // several failures regardless of how many iterations the solver
        // needs locally.
        let t_it = 400.0 / baseline_iters.max(1) as f64;
        for strategy in [
            CheckpointStrategy::Traditional,
            CheckpointStrategy::lossless_default(),
            if kind == SolverKind::Gmres {
                CheckpointStrategy::lossy_gmres()
            } else {
                CheckpointStrategy::lossy_default()
            },
        ] {
            let mut solver = workload.build_solver(&problem, kind, MAX_ITERS);
            let report = FaultTolerantRunner::new(run_config(strategy.clone(), 60.0, 7, t_it))
                .run(solver.as_mut(), &problem);
            assert!(
                report.failures > 0,
                "{kind:?}/{}: expected at least one failure",
                strategy.name()
            );
            assert!(
                !report.hit_iteration_limit,
                "{kind:?}/{}: solver did not converge",
                strategy.name()
            );
            // Exact schemes resume the identical trajectory for Jacobi and
            // CG (their full dynamic state is restored), so they converge in
            // exactly the baseline number of iterations.  GMRES checkpoints
            // only x even traditionally (Table 3), so its post-recovery
            // trajectory can differ slightly; the lossy scheme may add some
            // iterations for CG.
            let exact = strategy.recovery_mode()
                == lossy_ckpt::core::strategy::RecoveryMode::Exact;
            if exact && kind != SolverKind::Gmres {
                assert_eq!(report.convergence_iterations, baseline_iters);
            } else {
                assert!(report.convergence_iterations >= baseline_iters.min(2));
                assert!(report.convergence_iterations <= baseline_iters * 3 + 50);
            }
            // Solution quality: the relative residual honours the paper's
            // tolerance for this solver.
            let rel = problem
                .system
                .a
                .residual(solver.solution(), &problem.system.b)
                .norm2()
                / problem.system.b.norm2();
            assert!(
                rel < 1e-2,
                "{kind:?}/{}: relative residual {rel}",
                strategy.name()
            );
        }
    }
}

#[test]
fn lossy_scheme_has_lowest_overhead_for_gmres() {
    // The paper's headline claim, checked end to end on the simulated
    // cluster for GMRES (the solver with the biggest win).
    let workload = PaperWorkload::poisson(2048, EDGE);
    let problem = workload.build();
    let t_it = 4.0;
    let mut overheads = Vec::new();
    for strategy in [
        CheckpointStrategy::Traditional,
        CheckpointStrategy::lossless_default(),
        CheckpointStrategy::lossy_gmres(),
    ] {
        let mut solver = workload.build_solver(&problem, SolverKind::Gmres, MAX_ITERS);
        let report = FaultTolerantRunner::new(run_config(strategy.clone(), 120.0, 13, t_it))
            .run(solver.as_mut(), &problem);
        overheads.push((strategy.name(), report.overhead_seconds));
    }
    let get = |name: &str| overheads.iter().find(|(n, _)| *n == name).unwrap().1;
    assert!(
        get("lossy") < get("traditional"),
        "lossy {} vs traditional {}",
        get("lossy"),
        get("traditional")
    );
    assert!(
        get("lossy") < get("lossless"),
        "lossy {} vs lossless {}",
        get("lossy"),
        get("lossless")
    );
}

#[test]
fn table3_and_figures_have_consistent_shapes() {
    // Table 3 rows exist for every solver × process count and sizes are
    // ordered lossy < lossless ≤ traditional.
    let solvers = [SolverKind::Jacobi, SolverKind::Gmres, SolverKind::Cg];
    let rows = table3(&solvers, PAPER_PROCESS_COUNTS, EDGE, MAX_ITERS);
    assert_eq!(rows.len(), solvers.len() * PAPER_PROCESS_COUNTS.len());
    for row in &rows {
        assert!(row.lossy_mb < row.traditional_mb);
        assert!(row.lossless_mb <= row.traditional_mb * 1.01);
        assert!(row.lossy_mb < row.lossless_mb);
    }

    // Figures 4–6: checkpoint times grow with scale; lossy is cheapest.
    let pfs = PfsModel::bebop_like();
    for kind in solvers {
        let times = checkpoint_recovery_times(kind, &[256, 2048], EDGE, &pfs, MAX_ITERS);
        let at = |procs: usize, strategy: &str| {
            times
                .iter()
                .find(|r| r.processes == procs && r.strategy == strategy)
                .unwrap()
        };
        assert!(
            at(2048, "traditional").checkpoint_seconds > at(256, "traditional").checkpoint_seconds
        );
        assert!(at(2048, "lossy").checkpoint_seconds < at(2048, "lossless").checkpoint_seconds);
        assert!(
            at(2048, "lossless").checkpoint_seconds < at(2048, "traditional").checkpoint_seconds
        );
        // Recovery includes static variables and is never cheaper than the
        // checkpoint for the same scheme and scale.
        assert!(at(2048, "traditional").recovery_seconds > at(2048, "traditional").checkpoint_seconds);
    }

    // Figure 7: the model ranks lossy best for GMRES at 2,048 processes.
    let f7 = expected_overhead(&[SolverKind::Gmres], &[2048], 1.0, EDGE, &pfs, MAX_ITERS);
    let get = |s: &str| {
        f7.iter()
            .find(|r| r.strategy == s)
            .unwrap()
            .expected_overhead
    };
    assert!(get("lossy") < get("lossless"));
    assert!(get("lossless") < get("traditional"));
}

#[test]
fn theorem1_budget_exceeds_measured_gmres_delay() {
    // End-to-end consistency of the theory and the implementation: the
    // extra iterations a GMRES lossy recovery actually causes stay within
    // the Theorem-1 budget computed from the measured checkpoint times.
    let workload = PaperWorkload::poisson(2048, EDGE);
    let problem = workload.build();
    let pfs = PfsModel::bebop_like();
    let times = checkpoint_recovery_times(SolverKind::Gmres, &[2048], EDGE, &pfs, MAX_ITERS);
    let trad = times
        .iter()
        .find(|r| r.strategy == "traditional")
        .unwrap()
        .checkpoint_seconds;
    let lossy = times
        .iter()
        .find(|r| r.strategy == "lossy")
        .unwrap()
        .checkpoint_seconds;

    let mut baseline = workload.build_solver(&problem, SolverKind::Gmres, MAX_ITERS);
    baseline.run_to_convergence();
    let baseline_iters = baseline.iteration();
    let t_it = 72.0 * 60.0 / baseline_iters as f64; // paper-ish baseline

    let budget = theorem1_max_extra_iterations(&Theorem1Inputs {
        t_trad_ckp: trad,
        t_lossy_ckp: lossy,
        lambda: 1.0 / 3600.0,
        t_it,
    });

    // One lossy recovery in the middle of the run.
    let mut solver = workload.build_solver(&problem, SolverKind::Gmres, MAX_ITERS);
    for _ in 0..baseline_iters / 2 {
        solver.step();
    }
    let strategy = CheckpointStrategy::lossy_gmres();
    let enc = strategy.encode(solver.as_ref()).unwrap();
    strategy
        .recover(solver.as_mut(), &enc.payloads, enc.iteration, &enc.scalars)
        .unwrap();
    solver.run_to_convergence();
    let extra = solver.iteration().saturating_sub(baseline_iters) as f64;
    // The locally solved instance has far fewer (and far more expensive,
    // once calibrated) iterations than the paper-scale run, which shrinks
    // the budget; allow a small absolute slack on top of it.
    assert!(
        extra <= budget + 5.0,
        "measured extra iterations {extra} exceed the Theorem-1 budget {budget}"
    );
}
