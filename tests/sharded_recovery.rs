//! Kill-one-shard end-to-end recovery on the sharded execution backend.
//!
//! A CG run on real domain-decomposed shards checkpoints every shard's
//! solution slice under the coordinated epoch commit, then one shard is
//! fail-stopped mid-run.  The assertions pin the ISSUE's acceptance
//! criteria: **only** the failed shard restarts from its lossy checkpoint
//! (recovery counters prove the survivors did not roll back), and the run
//! still converges.
//!
//! CI runs this file across the shard × thread matrix; `LCR_SHARDS`
//! selects the shard count (default 4).

use lossy_ckpt::ckpt::{OsBackend, StorageBackend};
use lossy_ckpt::core::runner::{
    ExecutionBackend, FaultTolerantRunner, Persistence, RunConfig, ShardedOptions,
};
use lossy_ckpt::core::sharded::{run_sharded, KillSpec, ShardedRunConfig};
use lossy_ckpt::core::strategy::CheckpointStrategy;
use lossy_ckpt::core::workload::PaperWorkload;
use lossy_ckpt::solvers::{ShardedMethod, SolverKind};
use lossy_ckpt::sparse::poisson::poisson3d;
use lossy_ckpt::sparse::{CsrMatrix, Vector};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lcr-sharded-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn env_shards() -> usize {
    std::env::var("LCR_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(4)
}

/// The paper's Poisson operator is negative definite; CG needs SPD.
fn spd_poisson(edge: usize) -> (CsrMatrix, Vector) {
    let mut a = poisson3d(edge);
    for v in a.values_mut() {
        *v = -*v;
    }
    let b = Vector::filled(a.nrows(), 1.0);
    (a, b)
}

fn residual_norm(a: &CsrMatrix, b: &Vector, x: &Vector) -> f64 {
    let mut r = vec![0.0; b.len()];
    let (ip, ix, vs) = (a.indptr(), a.indices(), a.values());
    for i in 0..b.len() {
        let mut acc = 0.0;
        for k in ip[i]..ip[i + 1] {
            acc += vs[k] * x.as_slice()[ix[k]];
        }
        r[i] = b.as_slice()[i] - acc;
    }
    r.iter().map(|v| v * v).sum::<f64>().sqrt()
}

#[test]
fn kill_one_shard_recovers_only_that_shard_and_converges() {
    let shards = env_shards();
    let (a, b) = spd_poisson(16); // 4096 rows
    let dir = tempdir("kill");
    let victim = 1.min(shards - 1);

    let mut cfg = ShardedRunConfig::new(shards, ShardedMethod::Cg);
    cfg.rtol = 1e-7;
    cfg.reduce_block = 128; // 32 blocks: every shard count up to 32 is non-empty
    cfg.checkpoint_interval = 5;
    cfg.ckpt_dir = Some(dir.clone());
    cfg.kills = vec![KillSpec {
        shard: victim,
        at_iteration: 12,
    }];
    let report = run_sharded(&a, &b, &cfg);

    assert!(report.converged, "run must converge after the recovery");
    assert!(
        report.restart_iterations.contains(&12),
        "the recovery iteration triggers a Krylov rebuild"
    );
    // Epochs at iterations 5 and 10 committed before the kill at 12.
    assert!(report.committed_epochs.iter().any(|e| e.iteration == 10));
    for stats in &report.shards {
        if stats.shard == victim {
            assert_eq!(stats.rollbacks, 1, "failed shard rolls back exactly once");
            assert_eq!(
                stats.resumed_from_iteration,
                Some(10),
                "failed shard resumes from the newest committed epoch"
            );
            assert_eq!(stats.halo_replays, 0);
        } else {
            assert_eq!(stats.rollbacks, 0, "survivor {} rolled back", stats.shard);
            assert_eq!(stats.halo_replays, 1, "survivors replay halo state once");
            assert_eq!(stats.resumed_from_iteration, None);
        }
    }
    // The gathered solution really solves the system to the tolerance.
    let bb = b.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt();
    let rn = residual_norm(&a, &b, &report.solution);
    assert!(
        rn <= 1e-7 * bb * 1.5,
        "gathered solution residual {rn:.3e} exceeds tolerance"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// A failure before the first committed epoch restarts the shard from the
/// zero initial guess (Algorithm 2 with no checkpoint) and still
/// converges; survivors keep their state.
#[test]
fn kill_before_first_epoch_restarts_from_zero() {
    let shards = env_shards();
    let (a, b) = spd_poisson(12);
    let mut cfg = ShardedRunConfig::new(shards, ShardedMethod::Cg);
    cfg.rtol = 1e-7;
    cfg.reduce_block = 64;
    cfg.kills = vec![KillSpec {
        shard: 0,
        at_iteration: 3,
    }];
    let report = run_sharded(&a, &b, &cfg);
    assert!(report.converged);
    assert_eq!(report.shards[0].rollbacks, 1);
    assert_eq!(report.shards[0].resumed_from_iteration, None);
    for stats in &report.shards[1..] {
        assert_eq!(stats.rollbacks, 0);
        assert_eq!(stats.halo_replays, 1);
    }
}

/// The same scenario driven through the `FaultTolerantRunner` seam: a
/// `RunConfig` with `ExecutionBackend::Sharded` reuses the runner's
/// checkpoint-interval and disk-persistence settings and reports the
/// sharded outcome through the ordinary `RunReport`.
#[test]
fn runner_backend_seam_runs_sharded_with_recovery() {
    let shards = env_shards();
    let dir = tempdir("seam");
    let workload = PaperWorkload::poisson(4, 12);
    let problem = workload.build();
    let mut solver = workload.build_solver(&problem, SolverKind::Cg, 4000);

    let mut opts = ShardedOptions::new(shards);
    opts.reduce_block = 64;
    opts.rtol = 1e-7;
    opts.kills = vec![KillSpec {
        shard: 1.min(shards - 1),
        at_iteration: 12,
    }];
    let mut config = RunConfig::baseline(
        lossy_ckpt::ckpt::ClusterConfig::bebop_like(4, 1.0),
        lossy_ckpt::ckpt::PfsModel::bebop_like(),
    );
    config.strategy = CheckpointStrategy::lossy_default();
    config.checkpoint_interval_iterations = 5;
    config.persistence = Persistence::disk(&dir);
    config.backend = ExecutionBackend::Sharded(opts);

    let report = FaultTolerantRunner::new(config).run(solver.as_mut(), &problem);
    assert!(!report.hit_iteration_limit, "sharded run must converge");
    assert_eq!(report.strategy, "lossy");
    assert_eq!(report.failures, 1);
    assert_eq!(report.recoveries, 1);
    assert_eq!(report.resumed_from_iteration, Some(10));
    assert!(report.checkpoints_taken >= 2);
    assert!(report.restart_iterations.contains(&12));
    assert!(report.total_seconds > 0.0, "real wall-clock time elapsed");
    assert_eq!(report.checkpoint_seconds, 0.0, "no simulated breakdown");
    // The solver was left in the run's final state.
    assert_eq!(solver.iteration(), report.convergence_iterations);
    assert!(solver.converged());
    let _ = fs::remove_dir_all(&dir);
}

/// Double fault: two shards are killed at the *same* iteration.  Both must
/// roll back to the newest committed epoch in the same recovery round, the
/// survivors keep their state, and the run still converges correctly.
#[test]
fn double_fault_rolls_back_both_shards_in_one_round() {
    let shards = env_shards().max(3);
    let (a, b) = spd_poisson(16);
    let dir = tempdir("double");
    let (v0, v1) = (0, 1);

    let mut cfg = ShardedRunConfig::new(shards, ShardedMethod::Cg);
    cfg.rtol = 1e-7;
    cfg.reduce_block = 128;
    cfg.checkpoint_interval = 5;
    cfg.ckpt_dir = Some(dir.clone());
    cfg.kills = vec![
        KillSpec {
            shard: v0,
            at_iteration: 12,
        },
        KillSpec {
            shard: v1,
            at_iteration: 12,
        },
    ];
    let report = run_sharded(&a, &b, &cfg);

    assert!(report.converged, "run must converge after the double fault");
    assert!(report.restart_iterations.contains(&12));
    for stats in &report.shards {
        if stats.shard == v0 || stats.shard == v1 {
            assert_eq!(stats.rollbacks, 1, "shard {} must roll back", stats.shard);
            assert_eq!(
                stats.resumed_from_iteration,
                Some(10),
                "both victims resume from the newest fully-committed epoch"
            );
            assert_eq!(stats.halo_replays, 0);
        } else {
            assert_eq!(stats.rollbacks, 0, "survivor {} rolled back", stats.shard);
            assert_eq!(stats.halo_replays, 1, "one recovery round, one replay");
        }
    }
    let bb = b.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt();
    let rn = residual_norm(&a, &b, &report.solution);
    assert!(rn <= 1e-7 * bb * 1.5, "residual {rn:.3e} exceeds tolerance");
    let _ = fs::remove_dir_all(&dir);
}

/// Delegating backend that flips one payload bit in the `n`-th committed
/// (renamed) checkpoint file — a deterministic fault that only becomes
/// visible during recovery replay, when the store validates the file.
#[derive(Debug)]
struct FlipNthCommit {
    inner: OsBackend,
    renames: AtomicU64,
    corrupt_at: u64,
}

impl FlipNthCommit {
    fn new(corrupt_at: u64) -> Self {
        FlipNthCommit {
            inner: OsBackend,
            renames: AtomicU64::new(0),
            corrupt_at,
        }
    }
}

impl StorageBackend for FlipNthCommit {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list_dir(dir)
    }
    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_len(path)
    }
    fn read_prefix(&self, path: &Path, len: usize) -> io::Result<Vec<u8>> {
        self.inner.read_prefix(path, len)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }
    fn write_file(&self, path: &Path, parts: &[&[u8]]) -> io::Result<()> {
        self.inner.write_file(path, parts)
    }
    fn fsync(&self, path: &Path) -> io::Result<()> {
        self.inner.fsync(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)?;
        if self.renames.fetch_add(1, Ordering::SeqCst) + 1 == self.corrupt_at {
            let mut bytes = self.inner.read(to)?;
            if bytes.len() > 32 {
                bytes[32] ^= 0x40;
                self.inner.write_file(to, &[&bytes])?;
            }
        }
        Ok(())
    }
    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        self.inner.fsync_dir(dir)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }
}

/// Fault injected during recovery replay: the victim shard's *newest*
/// committed segment is silently corrupted post-commit.  Recovery detects
/// the corruption (CRC validation), walks back to the older committed
/// epoch, and the run still converges — never a silent wrong answer.
#[test]
fn corrupted_newest_epoch_falls_back_to_older_epoch_during_recovery() {
    let shards = env_shards();
    let (a, b) = spd_poisson(16);
    let dir = tempdir("replayfault");
    let victim = 1.min(shards - 1);

    let mut cfg = ShardedRunConfig::new(shards, ShardedMethod::Cg);
    cfg.rtol = 1e-7;
    cfg.reduce_block = 128;
    cfg.checkpoint_interval = 5;
    cfg.ckpt_dir = Some(dir.clone());
    cfg.kills = vec![KillSpec {
        shard: victim,
        at_iteration: 12,
    }];
    // Corrupt the victim's second committed file (the epoch at iteration
    // 10); other shards write through the plain backend.
    cfg.backend_factory = Some(Arc::new(move |shard| {
        if shard == victim {
            Arc::new(FlipNthCommit::new(2))
        } else {
            Arc::new(OsBackend)
        }
    }));
    let report = run_sharded(&a, &b, &cfg);

    assert!(report.converged, "run must converge despite replay fault");
    let stats = &report.shards[victim];
    assert_eq!(stats.rollbacks, 1);
    assert_eq!(
        stats.resumed_from_iteration,
        Some(5),
        "recovery must detect the corrupt epoch at 10 and fall back to 5"
    );
    let bb = b.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt();
    let rn = residual_norm(&a, &b, &report.solution);
    assert!(rn <= 1e-7 * bb * 1.5, "residual {rn:.3e} exceeds tolerance");
    let _ = fs::remove_dir_all(&dir);
}
