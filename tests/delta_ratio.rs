//! Bench-style evidence for the temporal-delta win the delta-encoded
//! checkpoint stream is built on: on the paper's 64³-per-process Poisson
//! problem solved with CG at the default point-wise relative bound
//! (1e-4), the delta-coded checkpoint payloads must be at least 1.3×
//! smaller than direct (anchor) coding of the same snapshots — and the
//! chain must replay to the bit-identical state a direct stream decodes
//! to.
//!
//! CI runs this file at `LCR_NUM_THREADS=1` and `=4`; the deterministic
//! kernels make both the payload bytes and the replayed state
//! thread-count independent.

use lossy_ckpt::compress::{
    Compressed, DeltaMode, ErrorBound, LossyCompressor, SzCompressor, SzTemporalState,
};
use lossy_ckpt::core::workload::PaperWorkload;
use lossy_ckpt::solvers::SolverKind;

/// Default error bound of the lossy strategy (CG row of Table 2).
const BOUND: ErrorBound = ErrorBound::PointwiseRel(1e-4);

#[test]
fn delta_payloads_beat_direct_coding_by_1_3x_on_64cubed_poisson_cg() {
    // One simulated process of the paper's weak-scaling grid: 64³ local
    // unknowns.
    let workload = PaperWorkload::poisson(256, 64);
    let problem = workload.build();
    let mut solver = workload.build_solver(&problem, SolverKind::Cg, 200_000);

    let sz = SzCompressor::new();
    let mut chain_state = SzTemporalState::new();
    let mut chain: Vec<Compressed> = Vec::new();
    let mut delta_bytes = 0usize;
    let mut direct_bytes = 0usize;
    let mut delta_snapshots = 0usize;

    // Snapshot every 5 CG iterations until convergence, as a checkpointed
    // run would.  The first snapshot is the anchor; each later one may
    // delta-code against its predecessor.
    let mut snapshots = 0usize;
    while !solver.converged() && snapshots < 64 {
        for _ in 0..5 {
            solver.step();
            if solver.converged() {
                break;
            }
        }
        let x = solver.solution().clone();

        // Direct (anchor) coding of this snapshot, for the comparison.
        let mut direct_state = SzTemporalState::new();
        let mut direct = Vec::new();
        sz.compress_temporal_into(
            x.as_slice(),
            BOUND,
            DeltaMode::Order2,
            true,
            &mut direct_state,
            &mut direct,
        )
        .expect("direct compression failed");

        // Chain coding: the encoder picks delta only when it wins.
        let mut encoded = Vec::new();
        let mode = sz
            .compress_temporal_into(
                x.as_slice(),
                BOUND,
                DeltaMode::Order2,
                snapshots == 0,
                &mut chain_state,
                &mut encoded,
            )
            .expect("chain compression failed");
        if mode != DeltaMode::None {
            delta_snapshots += 1;
            delta_bytes += encoded.len();
            direct_bytes += direct.len();
        }
        chain.push(Compressed {
            bytes: encoded,
            n_elements: x.len(),
        });
        snapshots += 1;

        // Bit-identity at every chain length: replaying the chain equals
        // decoding the equivalent direct stream.
        let replayed = sz.decompress_chain(&chain).expect("chain replay failed");
        let direct_decoded = sz
            .decompress(&Compressed {
                bytes: direct,
                n_elements: x.len(),
            })
            .expect("direct decode failed");
        assert_eq!(
            replayed, direct_decoded,
            "chain replay must be bit-identical to the direct decode at snapshot {snapshots}"
        );
    }

    assert!(
        delta_snapshots >= 6,
        "expected most snapshots to delta-code, got {delta_snapshots} of {snapshots}"
    );
    let ratio = direct_bytes as f64 / delta_bytes as f64;
    assert!(
        ratio >= 1.3,
        "delta payloads must be ≥1.3× smaller than direct: {direct_bytes} direct vs \
         {delta_bytes} delta bytes = {ratio:.2}×"
    );
}
