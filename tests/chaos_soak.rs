//! Chaos soak: sweeps > 200 seeded fault schedules across the simulated
//! runner and the sharded executor, asserting the safety invariant the
//! chaos engine exists to prove — **every run either converges with a
//! correct residual or fails with a typed error; never a silent wrong
//! answer** — and that every schedule replays bit-identically from its
//! seed (synchronous stores only; write-behind would interleave I/O
//! nondeterministically).
//!
//! CI runs this file at `LCR_NUM_THREADS=1` and `=4`; the deterministic
//! kernels make every assertion thread-count independent.

use lossy_ckpt::chaos::ChaosPlan;
use lossy_ckpt::ckpt::disk::read_checkpoint_file;
use lossy_ckpt::ckpt::{
    CheckpointLevel, ClusterConfig, DiskStore, PfsModel, RetryPolicy, StorageBackend,
};
use lossy_ckpt::core::runner::{ExecutionBackend, FaultTolerantRunner, Persistence, RunConfig};
use lossy_ckpt::core::sharded::{try_run_sharded, KillSpec, ShardedError, ShardedRunConfig};
use lossy_ckpt::core::strategy::CheckpointStrategy;
use lossy_ckpt::core::workload::PaperWorkload;
use lossy_ckpt::solvers::{ShardedMethod, SolverKind};
use lossy_ckpt::sparse::poisson::poisson3d;
use lossy_ckpt::sparse::{CommInterposer, CsrMatrix, Vector};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn tempdir(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lcr-soak-{tag}-{seed}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Zero-delay bounded retries: the supervision layer's schedule without
/// the wall-clock cost (the backoff *log* still records every retry).
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 3,
        base_delay_seconds: 0.0,
        multiplier: 1.0,
    }
}

/// The paper's Poisson operator is negative definite; CG needs SPD.
fn spd_poisson(edge: usize) -> (CsrMatrix, Vector) {
    let mut a = poisson3d(edge);
    for v in a.values_mut() {
        *v = -*v;
    }
    let b = Vector::filled(a.nrows(), 1.0);
    (a, b)
}

fn residual_norm(a: &CsrMatrix, b: &Vector, x: &Vector) -> f64 {
    let mut r = vec![0.0; b.len()];
    let (ip, ix, vs) = (a.indptr(), a.indices(), a.values());
    for i in 0..b.len() {
        let mut acc = 0.0;
        for k in ip[i]..ip[i + 1] {
            acc += vs[k] * x.as_slice()[ix[k]];
        }
        r[i] = b.as_slice()[i] - acc;
    }
    r.iter().map(|v| v * v).sum::<f64>().sqrt()
}

fn sim_config(dir: &Path, failure_seed: u64) -> RunConfig {
    RunConfig {
        strategy: CheckpointStrategy::Traditional,
        checkpoint_interval_iterations: 5,
        anchor_interval_snapshots: 0,
        cluster: ClusterConfig::bebop_like(4, 1.0),
        pfs: PfsModel::bebop_like(),
        level: CheckpointLevel::Pfs,
        mtti_seconds: 37.0,
        failure_seed: Some(failure_seed),
        max_failures: 10,
        max_executed_iterations: 200_000,
        num_threads: 0,
        // Synchronous disk mirror: the chaos fault schedule is a pure
        // function of the op sequence only without write-behind.
        persistence: Persistence::disk(dir),
        backend: ExecutionBackend::Simulated,
    }
}

fn run_simulated(plan: ChaosPlan, dir: &Path) -> (lossy_ckpt::core::runner::RunReport, Vec<PathBuf>) {
    let backend = plan.backend(0);
    let workload = PaperWorkload::poisson(4, 8);
    let problem = workload.build();
    let mut solver = workload.build_solver(&problem, SolverKind::Cg, 200_000);
    let report = FaultTolerantRunner::new(sim_config(dir, plan.seed.wrapping_mul(31).wrapping_add(7)))
        .with_storage_backend(backend.clone() as Arc<dyn StorageBackend>)
        .with_retry_policy(fast_retry())
        .run(solver.as_mut(), &problem);
    (report, backend.corrupted_files())
}

/// ~110 seeded storage-fault schedules through the simulated runner: the
/// in-memory tier always converges, transient faults are retried (and
/// counted, never silent), and every surviving corrupted file is rejected
/// by CRC validation.
#[test]
fn storage_mix_soak_on_simulated_runner() {
    let mut total_retries = 0usize;
    let mut retried_runs = 0usize;
    let mut corrupt_detected = 0usize;
    for seed in 0..110u64 {
        let plan = ChaosPlan::storage_mix(seed);
        let dir = tempdir("sim", seed);
        let (report, corrupted) = run_simulated(plan, &dir);

        // Safety invariant, part 1: the run itself always converges — the
        // in-memory tier is untouched by disk chaos (possibly degraded).
        assert!(
            !report.hit_iteration_limit,
            "seed {seed}: simulated run failed to converge"
        );
        assert_eq!(
            report.io_backoff_seconds.len(),
            report.io_retries,
            "seed {seed}: backoff schedule must log every retry"
        );
        total_retries += report.io_retries;
        retried_runs += usize::from(report.retried_checkpoints > 0);

        // Safety invariant, part 2: every corrupted committed file that
        // still exists must fail validation — corruption is detected,
        // never returned.
        for path in corrupted {
            if path.exists() {
                assert!(
                    read_checkpoint_file(&path).is_err(),
                    "seed {seed}: corrupted {} passed validation",
                    path.display()
                );
                corrupt_detected += 1;
            }
        }
        // Reopening the directory after the run must yield either a
        // CRC-valid checkpoint or a typed error — never a panic.
        if let Ok(mut store) = DiskStore::open(&dir, 2) {
            let _ = store.latest_valid();
        }
        let _ = fs::remove_dir_all(&dir);
    }
    assert!(total_retries > 0, "a 5% transient mix over 110 runs must retry");
    assert!(retried_runs > 0, "some checkpoint must commit only after retries");
    assert!(corrupt_detected > 0, "some injected corruption must survive to be detected");
}

/// Replays two full simulated runs from the same seed and asserts the
/// *entire* reports and fault logs are identical — simulated time included,
/// so the check is bit-level, not statistical.
#[test]
fn simulated_chaos_replays_bit_identically() {
    for seed in [3u64, 57] {
        let plan = ChaosPlan::storage_mix(seed);
        let runs: Vec<_> = (0..2)
            .map(|rep| {
                let backend = plan.backend(0);
                let dir = tempdir(&format!("replay{rep}"), seed);
                let workload = PaperWorkload::poisson(4, 8);
                let problem = workload.build();
                let mut solver = workload.build_solver(&problem, SolverKind::Cg, 200_000);
                let report = FaultTolerantRunner::new(sim_config(&dir, seed))
                    .with_storage_backend(backend.clone() as Arc<dyn StorageBackend>)
                    .with_retry_policy(fast_retry())
                    .run(solver.as_mut(), &problem);
                // Normalize the per-repetition temp directory away so the
                // logs compare on (op index, operation, file name, kind).
                let log: Vec<_> = backend
                    .fault_log()
                    .into_iter()
                    .map(|mut rec| {
                        rec.path = rec
                            .path
                            .strip_prefix(&dir)
                            .map(PathBuf::from)
                            .unwrap_or_default();
                        rec
                    })
                    .collect();
                let _ = fs::remove_dir_all(&dir);
                (report, log)
            })
            .collect();
        assert_eq!(runs[0].0, runs[1].0, "seed {seed}: reports must replay identically");
        assert_eq!(runs[0].1, runs[1].1, "seed {seed}: fault logs must replay identically");
    }
}

/// Ten dying-disk schedules: the device hard-fails a few operations in,
/// the supervised runner retries, gives up after the degrade threshold,
/// drops the durable tier (`degraded_tier`) and still converges in memory.
#[test]
fn dying_disk_degrades_to_memory_and_converges() {
    for seed in 0..10u64 {
        let plan = ChaosPlan::dying_disk(seed, 12);
        let backend = plan.backend(0);
        let dir = tempdir("dying", seed);
        let workload = PaperWorkload::poisson(4, 8);
        let problem = workload.build();
        let mut solver = workload.build_solver(&problem, SolverKind::Jacobi, 200_000);
        let mut cfg = sim_config(&dir, seed);
        cfg.mtti_seconds = f64::MAX;
        cfg.failure_seed = None;
        cfg.max_failures = 0;
        let report = FaultTolerantRunner::new(cfg)
            .with_storage_backend(backend as Arc<dyn StorageBackend>)
            .with_retry_policy(fast_retry())
            .with_degrade_after(3)
            .run(solver.as_mut(), &problem);
        assert!(
            report.degraded_tier,
            "seed {seed}: a dead disk must degrade the durable tier"
        );
        assert!(
            !report.hit_iteration_limit,
            "seed {seed}: the run must keep converging after degrading"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

fn sharded_cfg(plan: ChaosPlan, shards: usize, method: ShardedMethod, dir: &Path) -> ShardedRunConfig {
    let mut cfg = ShardedRunConfig::new(shards, method);
    cfg.rtol = 1e-7;
    cfg.reduce_block = 128;
    cfg.checkpoint_interval = 4;
    cfg.retain = 2;
    cfg.ckpt_dir = Some(dir.to_path_buf());
    cfg.retry = Some(fast_retry());
    cfg.backend_factory = Some(Arc::new(move |shard| {
        plan.backend(shard as u64) as Arc<dyn StorageBackend>
    }));
    cfg
}

/// Classifies one sharded outcome against the safety invariant; returns
/// whether the run succeeded.
fn assert_safe_outcome(
    seed: u64,
    a: &CsrMatrix,
    b: &Vector,
    rtol: f64,
    result: &Result<lossy_ckpt::core::sharded::ShardedReport, ShardedError>,
) -> bool {
    match result {
        Ok(report) => {
            assert!(report.converged, "seed {seed}: Ok report must have converged");
            let bb = b.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt();
            let rn = residual_norm(a, b, &report.solution);
            assert!(
                rn <= rtol * bb * 10.0,
                "seed {seed}: silent wrong answer — residual {rn:.3e}"
            );
            true
        }
        // Typed failure: acceptable under chaos, by construction of the
        // error enum (Storage{..} | Comm(..)) there is nothing to assert
        // beyond having got here without panicking.
        Err(_) => false,
    }
}

/// 80 seeded storage schedules on the real sharded executor, CG and
/// BiCGStab alternating, with a fail-stop kill (a double fault every 10th
/// seed) layered on top of the injected disk faults.  Every failing seed
/// must replay to the *same* typed error; sampled succeeding seeds must
/// replay the identical trace.
#[test]
fn sharded_storage_soak_with_kills() {
    let (a, b) = spd_poisson(6);
    let run = |seed: u64| {
        let shards = 2 + (seed % 2) as usize;
        let method = if seed.is_multiple_of(2) { ShardedMethod::Cg } else { ShardedMethod::BiCgStab };
        let plan = ChaosPlan::storage_mix(seed);
        let dir = tempdir("shard", seed);
        let mut cfg = sharded_cfg(plan, shards, method, &dir);
        cfg.kills = vec![KillSpec {
            shard: (seed as usize) % shards,
            at_iteration: 10,
        }];
        if seed.is_multiple_of(10) && shards > 1 {
            // Double fault: a second shard dies at the same iteration.
            cfg.kills.push(KillSpec {
                shard: (seed as usize + 1) % shards,
                at_iteration: 10,
            });
        }
        let result = try_run_sharded(&a, &b, &cfg);
        let _ = fs::remove_dir_all(&dir);
        result
    };

    let mut ok = 0usize;
    let mut failed_seeds = Vec::new();
    for seed in 0..80u64 {
        let result = run(seed);
        if assert_safe_outcome(seed, &a, &b, 1e-7, &result) {
            ok += 1;
        } else {
            failed_seeds.push((seed, result.unwrap_err()));
        }
    }
    assert!(ok >= 20, "only {ok}/80 sharded chaos runs succeeded");

    // Replay every failing schedule: same seed, same typed error.
    for (seed, first_err) in &failed_seeds {
        let replay = run(*seed);
        assert_eq!(
            replay.as_ref().err(),
            Some(first_err),
            "seed {seed}: failing schedule must replay to the identical error"
        );
    }
    // Replay a sample of succeeding schedules bit-identically.
    let ok_seeds: Vec<u64> = (0..80u64)
        .filter(|s| !failed_seeds.iter().any(|(f, _)| f == s))
        .take(3)
        .collect();
    for seed in ok_seeds {
        let (r1, r2) = (run(seed).unwrap(), run(seed).unwrap());
        assert_eq!(r1.iterations, r2.iterations, "seed {seed}");
        assert_eq!(r1.residual_trace, r2.residual_trace, "seed {seed}");
        assert_eq!(r1.solution.as_slice(), r2.solution.as_slice(), "seed {seed}");
    }
}

/// 20 seeded comm-chaos schedules: message delays and drops under a
/// heartbeat.  Dropped halo messages surface as typed timeout errors —
/// never hangs, never wrong answers.  (Outcomes here depend on wall-clock
/// timing, so this part asserts safety per run, not cross-run stability.)
#[test]
fn sharded_comm_chaos_is_typed_or_correct() {
    let (a, b) = spd_poisson(6);
    let mut ok = 0usize;
    for seed in 200..220u64 {
        let plan = ChaosPlan {
            msg_delay: 0.05,
            msg_drop: 0.01,
            delay: Duration::from_millis(1),
            ..ChaosPlan::quiet(seed)
        };
        let dir = tempdir("comm", seed);
        let mut cfg = sharded_cfg(ChaosPlan::quiet(seed), 3, ShardedMethod::Cg, &dir);
        cfg.heartbeat_timeout = Some(Duration::from_millis(250));
        cfg.interposer_factory = Some(Arc::new(move |shard| {
            plan.interposer(shard as u64) as Box<dyn CommInterposer>
        }));
        let result = try_run_sharded(&a, &b, &cfg);
        ok += usize::from(assert_safe_outcome(seed, &a, &b, 1e-7, &result));
        let _ = fs::remove_dir_all(&dir);
    }
    assert!(ok > 0, "no comm-chaos run converged");
}

/// Five stall schedules: one shard sleeps 600 ms mid-halo-send under a
/// 120 ms heartbeat — supervision must flag it and abort the run with a
/// typed error on every shard instead of hanging.
#[test]
fn peer_stall_trips_heartbeat_into_typed_error() {
    let (a, b) = spd_poisson(6);
    for seed in 300..305u64 {
        let stall_plan = ChaosPlan {
            stall_at_msg: Some(3),
            stall: Duration::from_millis(600),
            ..ChaosPlan::quiet(seed)
        };
        let dir = tempdir("stall", seed);
        let mut cfg = sharded_cfg(ChaosPlan::quiet(seed), 2, ShardedMethod::Cg, &dir);
        cfg.heartbeat_timeout = Some(Duration::from_millis(120));
        cfg.interposer_factory = Some(Arc::new(move |shard| {
            let plan = if shard == 1 { stall_plan } else { ChaosPlan::quiet(seed) };
            plan.interposer(shard as u64) as Box<dyn CommInterposer>
        }));
        let result = try_run_sharded(&a, &b, &cfg);
        assert!(
            result.is_err(),
            "seed {seed}: a stalled peer must surface as a typed error"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
