//! Umbrella crate re-exporting the lossy-checkpointing workspace crates.
#![forbid(unsafe_code)]

pub use lcr_chaos as chaos;
pub use lcr_ckpt as ckpt;
pub use lcr_compress as compress;
pub use lcr_core as core;
pub use lcr_perfmodel as perfmodel;
pub use lcr_solvers as solvers;
pub use lcr_sparse as sparse;
