//! Delta-encoded checkpoint streams end to end: anchored delta chains
//! through the SZ temporal codec, the checkpoint store and the durable
//! disk tier.
//!
//! Three demonstrations on the paper's Poisson/CG workload:
//!
//! 1. **Anchor-interval sweep** — the same lossy-checkpointed solve at
//!    several `anchor_interval_snapshots` settings, showing how longer
//!    chains trade payload bytes against chain length.
//! 2. **Payload-size trace** — the per-checkpoint byte sizes of one run
//!    (`RunReport::checkpoint_bytes_trace`), where deltas undercut the
//!    anchors they hang off.
//! 3. **Mid-chain crash recovery** — a run with durable checkpoints stops
//!    mid-solve with an anchor + deltas on disk; a completely fresh
//!    runner replays the chain from its anchor and converges.
//!
//! ```bash
//! cargo run --release --example delta_checkpoint
//! ```

use lossy_ckpt::ckpt::{CheckpointLevel, ClusterConfig, PfsModel};
use lossy_ckpt::core::runner::{ExecutionBackend, FaultTolerantRunner, Persistence, RunConfig};
use lossy_ckpt::core::strategy::CheckpointStrategy;
use lossy_ckpt::core::workload::PaperWorkload;
use lossy_ckpt::solvers::SolverKind;

fn config(anchor_interval_snapshots: usize) -> RunConfig {
    RunConfig {
        strategy: CheckpointStrategy::lossy_default(),
        checkpoint_interval_iterations: 2,
        anchor_interval_snapshots,
        cluster: ClusterConfig::bebop_like(256, 0.5),
        pfs: PfsModel::bebop_like(),
        level: CheckpointLevel::Pfs,
        mtti_seconds: f64::MAX,
        failure_seed: None,
        max_failures: 0,
        max_executed_iterations: 500_000,
        num_threads: 0,
        persistence: Persistence::InMemory,
        backend: ExecutionBackend::Simulated,
    }
}

fn main() {
    let workload = PaperWorkload::poisson(256, 8);
    let problem = workload.build();

    // --- 1: anchor-interval sweep -----------------------------------------
    println!("anchor-interval sweep (CG, lossy checkpoints every 2 iterations):");
    println!("  interval  ckpts  anchors  deltas  mean MB  mean ratio");
    for interval in [0usize, 2, 4, 8] {
        let mut solver = workload.build_solver(&problem, SolverKind::Cg, 200_000);
        let report =
            FaultTolerantRunner::new(config(interval)).run(solver.as_mut(), &problem);
        println!(
            "  {:>8}  {:>5}  {:>7}  {:>6}  {:>7.1}  {:>9.1}x",
            if interval == 0 {
                "anchors".to_string()
            } else {
                interval.to_string()
            },
            report.checkpoints_taken,
            report.anchor_checkpoints,
            report.delta_checkpoints,
            report.mean_checkpoint_bytes / 1e6,
            report.mean_compression_ratio,
        );
    }

    // --- 2: payload-size trace --------------------------------------------
    let mut solver = workload.build_solver(&problem, SolverKind::Cg, 200_000);
    let report = FaultTolerantRunner::new(config(4)).run(solver.as_mut(), &problem);
    println!(
        "\npayload-size trace at anchor interval 4 ({} anchors, {} deltas; the \
         encoder keeps a delta only when it beats direct coding):",
        report.anchor_checkpoints, report.delta_checkpoints
    );
    let anchor0 = report.checkpoint_bytes_trace.first().copied().unwrap_or(0);
    for (i, bytes) in report.checkpoint_bytes_trace.iter().enumerate() {
        println!(
            "  checkpoint {:>2}: {:>7.1} MB{}",
            i,
            *bytes as f64 / 1e6,
            if *bytes < anchor0 { "  (undercuts the first anchor)" } else { "" }
        );
    }

    // --- 3: mid-chain crash recovery from the durable tier ----------------
    let dir = std::env::temp_dir().join(format!("lcr-example-delta-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = config(4);
    cfg.persistence = Persistence::disk(&dir);
    // Die late enough that the chain has settled into delta coding: at
    // this scale the early snapshots still anchor (the encoder only keeps
    // a delta when it wins), so crash after checkpoint 6 of the trace.
    cfg.max_executed_iterations = 15;
    let mut s1 = workload.build_solver(&problem, SolverKind::Cg, 200_000);
    let phase1 = FaultTolerantRunner::new(cfg.clone()).run(s1.as_mut(), &problem);
    println!(
        "\ncrash phase: executed {} iterations, left {} checkpoint(s) on disk \
         ({} anchor(s) + {} delta(s)), then \"crashed\" mid-chain",
        phase1.executed_iterations,
        phase1.checkpoints_taken,
        phase1.anchor_checkpoints,
        phase1.delta_checkpoints
    );
    assert!(
        phase1.delta_checkpoints > 0,
        "the crash phase must leave a delta chain behind"
    );

    cfg.max_executed_iterations = 500_000;
    let mut s2 = workload.build_solver(&problem, SolverKind::Cg, 200_000);
    let phase2 = FaultTolerantRunner::new(cfg).run(s2.as_mut(), &problem);
    let resumed = phase2
        .resumed_from_iteration
        .expect("the fresh runner must resume from the disk chain");
    println!(
        "recovery phase: fresh runner replayed the newest chain (anchor + deltas) \
         back to iteration {resumed}, then converged after {} total iterations \
         ({} executed in this process)",
        phase2.convergence_iterations, phase2.executed_iterations
    );

    let _ = std::fs::remove_dir_all(&dir);
}
