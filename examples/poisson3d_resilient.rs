//! Compare the three checkpointing schemes (traditional, lossless, lossy)
//! on the paper's 3-D Poisson workload with the Jacobi, GMRES and CG
//! solvers — a miniature version of the paper's Figure 10 experiment that
//! prints a per-scheme overhead summary.
//!
//! ```bash
//! cargo run --release --example poisson3d_resilient
//! ```

use lossy_ckpt::ckpt::{CheckpointLevel, ClusterConfig, PfsModel};
use lossy_ckpt::core::experiment::paper_baseline_seconds;
use lossy_ckpt::core::runner::{ExecutionBackend, FaultTolerantRunner, Persistence, RunConfig};
use lossy_ckpt::core::strategy::CheckpointStrategy;
use lossy_ckpt::core::workload::PaperWorkload;
use lossy_ckpt::perfmodel::young_optimal_interval_iterations;
use lossy_ckpt::solvers::SolverKind;

fn main() {
    let processes = 2048;
    let mtti = 3600.0;
    let workload = PaperWorkload::poisson(processes, 10);
    let problem = workload.build();
    let pfs = PfsModel::bebop_like();

    println!(
        "3-D Poisson, paper scale {} unknowns over {} ranks, MTTI = {:.0} min\n",
        problem.paper_global_unknowns,
        processes,
        mtti / 60.0
    );
    println!(
        "{:<8} {:<12} {:>10} {:>10} {:>12} {:>10} {:>12}",
        "solver", "scheme", "failures", "ckpts", "overhead(s)", "overhead%", "extra iters"
    );

    for kind in [SolverKind::Jacobi, SolverKind::Gmres, SolverKind::Cg] {
        // Calibrate the per-iteration cost so the failure-free run matches
        // the paper's baseline duration for this solver.
        let mut baseline = workload.build_solver(&problem, kind, 500_000);
        baseline.run_to_convergence();
        let baseline_iters = baseline.iteration().max(1);
        let t_it = paper_baseline_seconds(kind) / baseline_iters as f64;
        let cluster = ClusterConfig::bebop_like(processes, t_it);

        for strategy in [
            CheckpointStrategy::Traditional,
            CheckpointStrategy::lossless_default(),
            if kind == SolverKind::Gmres {
                CheckpointStrategy::lossy_gmres()
            } else {
                CheckpointStrategy::lossy_default()
            },
        ] {
            // A rough per-scheme checkpoint cost to pick the Young interval:
            // traditional ≈120 s, lossless ≈100 s, lossy ≈25 s (Figures 4–6).
            let t_ckp = match strategy.name() {
                "traditional" => 120.0,
                "lossless" => 100.0,
                _ => 25.0,
            };
            let interval = young_optimal_interval_iterations(mtti, t_ckp, t_it)
                .min(baseline_iters / 2)
                .max(1);

            let mut solver = workload.build_solver(&problem, kind, 500_000);
            let report = FaultTolerantRunner::new(RunConfig {
                strategy: strategy.clone(),
                checkpoint_interval_iterations: interval,
                anchor_interval_snapshots: 0,
                cluster,
                pfs,
                level: CheckpointLevel::Pfs,
                mtti_seconds: mtti,
                failure_seed: Some(20180611),
                max_failures: 200,
                max_executed_iterations: 500_000,
                num_threads: 0,
                persistence: Persistence::InMemory,
                backend: ExecutionBackend::Simulated,
            })
            .run(solver.as_mut(), &problem);

            println!(
                "{:<8} {:<12} {:>10} {:>10} {:>12.1} {:>9.1}% {:>12}",
                kind.name(),
                strategy.name(),
                report.failures,
                report.checkpoints_taken,
                report.overhead_seconds,
                report.overhead_ratio() * 100.0,
                report
                    .convergence_iterations
                    .saturating_sub(baseline_iters)
            );
        }
    }
    println!(
        "\nExpected shape (paper, Figure 10): lossy has the lowest overhead for every \
         solver; CG pays a ~25% iteration penalty per lossy recovery yet still wins \
         because its traditional checkpoints are twice the size."
    );
}
