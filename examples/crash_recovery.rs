//! Crash-recovery walkthrough: durable on-disk checkpoints surviving a
//! process death.
//!
//! Phase 1 runs a Jacobi solve with the durable tier enabled and "crashes"
//! mid-run (iteration cap).  Phase 2 tampers with the newest checkpoint
//! the way a real crash mid-write would (truncated file under a newer id)
//! and then starts a completely fresh runner over the same directory: it
//! validates CRCs, skips the partial file, resumes from the newest
//! *complete* checkpoint and converges.
//!
//! ```bash
//! cargo run --release --example crash_recovery
//! ```

use lossy_ckpt::ckpt::{CheckpointLevel, ClusterConfig, PfsModel};
use lossy_ckpt::core::runner::{ExecutionBackend, FaultTolerantRunner, Persistence, RunConfig};
use lossy_ckpt::core::strategy::CheckpointStrategy;
use lossy_ckpt::core::workload::PaperWorkload;
use lossy_ckpt::solvers::SolverKind;
use std::path::{Path, PathBuf};

fn config(dir: &Path, max_executed_iterations: usize) -> RunConfig {
    RunConfig {
        strategy: CheckpointStrategy::Traditional,
        checkpoint_interval_iterations: 10,
        anchor_interval_snapshots: 0,
        cluster: ClusterConfig::bebop_like(256, 0.5),
        pfs: PfsModel::bebop_like(),
        level: CheckpointLevel::Pfs,
        mtti_seconds: f64::MAX,
        failure_seed: None,
        max_failures: 0,
        max_executed_iterations,
        num_threads: 0,
        // Write-behind: checkpoint files are written by a background I/O
        // thread while the solver keeps iterating.
        persistence: Persistence::disk_write_behind(dir),
        backend: ExecutionBackend::Simulated,
    }
}

fn checkpoint_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| rd.map(|e| e.unwrap().path()).collect())
        .unwrap_or_default();
    files.retain(|p| p.extension().is_some_and(|e| e == "lcr"));
    files.sort();
    files
}

fn main() {
    let dir = std::env::temp_dir().join(format!("lcr-example-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let workload = PaperWorkload::poisson(256, 8);
    let problem = workload.build();

    // --- phase 1: run with durable checkpoints, die mid-run ---------------
    let mut solver = workload.build_solver(&problem, SolverKind::Jacobi, 200_000);
    let report = FaultTolerantRunner::new(config(&dir, 35)).run(solver.as_mut(), &problem);
    println!(
        "phase 1: executed {} iterations, wrote {} durable checkpoint(s), then \"crashed\"",
        report.executed_iterations, report.checkpoints_taken
    );
    for file in checkpoint_files(&dir) {
        println!("  on disk: {}", file.display());
    }

    // --- simulate a crash mid-write of the *next* checkpoint --------------
    if let Some(newest) = checkpoint_files(&dir).pop() {
        let bytes = std::fs::read(&newest).expect("read newest checkpoint");
        let partial = dir.join("ckpt-4000000000.lcr");
        std::fs::write(&partial, &bytes[..bytes.len() / 2]).expect("write partial file");
        println!(
            "planted a half-written checkpoint ({} of {} bytes): {}",
            bytes.len() / 2,
            bytes.len(),
            partial.display()
        );
    }

    // --- phase 2: a fresh runner + fresh solver over the same directory ---
    let mut fresh = workload.build_solver(&problem, SolverKind::Jacobi, 200_000);
    let report = FaultTolerantRunner::new(config(&dir, 500_000)).run(fresh.as_mut(), &problem);
    match report.resumed_from_iteration {
        Some(it) => println!(
            "phase 2: resumed from the newest COMPLETE checkpoint (iteration {it}), \
             skipped the partial file"
        ),
        None => println!("phase 2: no valid checkpoint found, started from scratch"),
    }
    println!(
        "phase 2: converged after {} total iterations ({} executed in this process), \
         recovery read cost {:.1} simulated s",
        report.convergence_iterations, report.executed_iterations, report.recovery_seconds
    );

    let _ = std::fs::remove_dir_all(&dir);
}
