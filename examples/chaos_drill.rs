//! Chaos drill: two small seeded fault-injection scenarios, end to end.
//!
//! 1. **Storage chaos** — a simulated CG run mirrors its checkpoints
//!    through a seeded [`FaultyBackend`](lossy_ckpt::chaos::FaultyBackend)
//!    that injects transient `EIO`s, torn/short writes, fsync lies and
//!    post-commit bit flips.  The supervised retry layer absorbs the
//!    transient faults (the report counts every retry and logs the backoff
//!    schedule) and the run converges.
//! 2. **Peer stall** — a sharded CG run where one shard freezes for
//!    300 ms under a 50 ms heartbeat: supervision trips and the run fails
//!    with a *typed* error instead of hanging.
//!
//! Replay either scenario bit-identically by keeping the seed fixed.
//!
//! ```bash
//! cargo run --release --example chaos_drill
//! LCR_CHAOS_SEED=7 cargo run --release --example chaos_drill
//! ```

use lossy_ckpt::chaos::ChaosPlan;
use lossy_ckpt::ckpt::{
    CheckpointLevel, ClusterConfig, PfsModel, RetryPolicy, StorageBackend,
};
use lossy_ckpt::core::runner::{ExecutionBackend, FaultTolerantRunner, Persistence, RunConfig};
use lossy_ckpt::core::sharded::{try_run_sharded, ShardedRunConfig};
use lossy_ckpt::core::strategy::CheckpointStrategy;
use lossy_ckpt::core::workload::PaperWorkload;
use lossy_ckpt::solvers::{ShardedMethod, SolverKind};
use lossy_ckpt::sparse::poisson::poisson3d;
use lossy_ckpt::sparse::{CommInterposer, Vector};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let seed: u64 = std::env::var("LCR_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);

    // --- Scenario 1: seeded storage faults through the simulated runner.
    println!("=== chaos drill: storage faults (seed {seed}) ===");
    // Hotter than the soak's 5% mix so a short drill run reliably shows
    // the retry layer doing work.
    let plan = ChaosPlan {
        transient_io: 0.25,
        bit_flip: 0.10,
        ..ChaosPlan::storage_mix(seed)
    };
    let backend = plan.backend(0);
    let dir = std::env::temp_dir().join(format!("lcr-chaos-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let workload = PaperWorkload::poisson(4, 8);
    let problem = workload.build();
    let mut solver = workload.build_solver(&problem, SolverKind::Cg, 200_000);
    let config = RunConfig {
        strategy: CheckpointStrategy::Traditional,
        checkpoint_interval_iterations: 5,
        anchor_interval_snapshots: 0,
        cluster: ClusterConfig::bebop_like(4, 1.0),
        pfs: PfsModel::bebop_like(),
        level: CheckpointLevel::Pfs,
        mtti_seconds: f64::MAX,
        failure_seed: None,
        max_failures: 0,
        max_executed_iterations: 200_000,
        num_threads: 0,
        persistence: Persistence::disk(&dir),
        backend: ExecutionBackend::Simulated,
    };
    let report = FaultTolerantRunner::new(config)
        .with_storage_backend(backend.clone() as Arc<dyn StorageBackend>)
        .with_retry_policy(RetryPolicy {
            max_retries: 3,
            base_delay_seconds: 0.001,
            multiplier: 2.0,
        })
        .run(solver.as_mut(), &problem);
    println!("  converged in {} iterations", report.convergence_iterations);
    println!(
        "  checkpoints: {} committed, {} failed, {} committed only after retries",
        report.checkpoints_taken, report.failed_checkpoints, report.retried_checkpoints
    );
    println!(
        "  io retries: {} (backoff schedule {:?} s), degraded_tier: {}",
        report.io_retries, report.io_backoff_seconds, report.degraded_tier
    );
    println!("  injected faults:");
    for rec in backend.fault_log() {
        println!(
            "    op {:>3} {:<10} {:?}  {}",
            rec.op,
            rec.operation,
            rec.kind,
            rec.path.file_name().map(|f| f.to_string_lossy().into_owned()).unwrap_or_default()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    // --- Scenario 2: a stalled shard under a heartbeat.
    println!("\n=== chaos drill: peer stall under heartbeat ===");
    let mut a = poisson3d(6);
    for v in a.values_mut() {
        *v = -*v; // the Poisson operator is negative definite; CG needs SPD
    }
    let b = Vector::filled(a.nrows(), 1.0);
    let stall_plan = ChaosPlan {
        stall_at_msg: Some(3),
        stall: Duration::from_millis(300),
        ..ChaosPlan::quiet(seed)
    };
    let mut cfg = ShardedRunConfig::new(2, ShardedMethod::Cg);
    cfg.rtol = 1e-7;
    cfg.reduce_block = 128;
    cfg.heartbeat_timeout = Some(Duration::from_millis(50));
    cfg.interposer_factory = Some(Arc::new(move |shard| {
        let plan = if shard == 1 { stall_plan } else { ChaosPlan::quiet(0) };
        plan.interposer(shard as u64) as Box<dyn CommInterposer>
    }));
    match try_run_sharded(&a, &b, &cfg) {
        Ok(_) => println!("  unexpected: the stalled run converged"),
        Err(e) => println!("  typed failure (as designed): {e}"),
    }
}
