//! A SIMPLE-style pressure-correction loop (the CFD motivation of the
//! paper's introduction) with lossy checkpointing of the pressure solve.
//!
//! The introduction of the paper motivates lossy checkpointing with 3-D CFD
//! codes using the SIMPLE algorithm, where the pressure-Poisson solve inside
//! every outer iteration dominates both runtime and checkpoint volume.  This
//! example builds a small 2-D lid-driven-cavity-like pressure-correction
//! loop: each outer step assembles a Poisson right-hand side from the
//! current velocity divergence, solves it with CG under lossy
//! checkpointing, and relaxes the velocity field with the pressure
//! gradient.  Failures are injected during the pressure solves.
//!
//! ```bash
//! cargo run --release --example cfd_simple
//! ```

use lossy_ckpt::ckpt::{CheckpointLevel, ClusterConfig, PfsModel};
use lossy_ckpt::core::runner::{ExecutionBackend, FaultTolerantRunner, Persistence, RunConfig};
use lossy_ckpt::core::strategy::CheckpointStrategy;
use lossy_ckpt::core::workload::{PaperWorkload, ScaledProblem};
use lossy_ckpt::solvers::{ConjugateGradient, IterativeMethod, LinearSystem, StoppingCriteria};
use lossy_ckpt::sparse::poisson::poisson2d;
use lossy_ckpt::sparse::Vector;

/// Grid edge of the cavity.
const N: usize = 24;
/// Number of outer SIMPLE iterations.
const OUTER_STEPS: usize = 8;
/// Under-relaxation factor for the velocity update.
const ALPHA_U: f64 = 0.7;

/// Builds the SPD pressure-Poisson matrix for the cavity.
fn pressure_matrix() -> LinearSystem {
    let mut a = poisson2d(N);
    for v in a.values_mut() {
        *v = -*v; // SPD sign convention for CG
    }
    LinearSystem::new(a, Vector::zeros(N * N))
}

/// Central-difference divergence of the (u, v) velocity field.
fn divergence(u: &Vector, v: &Vector) -> Vector {
    let idx = |i: usize, j: usize| j * N + i;
    let mut div = Vector::zeros(N * N);
    for j in 0..N {
        for i in 0..N {
            let dudx = if i + 1 < N && i > 0 {
                (u[idx(i + 1, j)] - u[idx(i - 1, j)]) * 0.5
            } else {
                0.0
            };
            let dvdy = if j + 1 < N && j > 0 {
                (v[idx(i, j + 1)] - v[idx(i, j - 1)]) * 0.5
            } else {
                0.0
            };
            div[idx(i, j)] = dudx + dvdy;
        }
    }
    div
}

/// Corrects the velocity with the pressure gradient (projection step).
fn correct_velocity(u: &mut Vector, v: &mut Vector, p: &Vector) {
    let idx = |i: usize, j: usize| j * N + i;
    for j in 1..N - 1 {
        for i in 1..N - 1 {
            let dpdx = (p[idx(i + 1, j)] - p[idx(i - 1, j)]) * 0.5;
            let dpdy = (p[idx(i, j + 1)] - p[idx(i, j - 1)]) * 0.5;
            u[idx(i, j)] -= ALPHA_U * dpdx;
            v[idx(i, j)] -= ALPHA_U * dpdy;
        }
    }
}

fn main() {
    // Lid-driven cavity initial condition: the top lid moves with u = 1.
    let idx = |i: usize, j: usize| j * N + i;
    let mut u = Vector::zeros(N * N);
    let mut v = Vector::zeros(N * N);
    for i in 0..N {
        u[idx(i, N - 1)] = 1.0;
    }

    // Checkpoint accounting mirrors a 1,024-rank production run.
    let accounting: ScaledProblem = PaperWorkload::poisson(1024, 10).build();
    let cluster = ClusterConfig::bebop_like(1024, 0.8);
    let pfs = PfsModel::bebop_like();

    let mut total_pressure_iters = 0usize;
    let mut total_failures = 0usize;
    let mut total_overhead = 0.0f64;

    println!("SIMPLE-style pressure-correction loop, {N}x{N} cavity, {OUTER_STEPS} outer steps\n");
    for outer in 0..OUTER_STEPS {
        // Pressure-Poisson equation: ∇²p' = ∇·u (discretised, SPD sign).
        let system = pressure_matrix();
        let rhs = divergence(&u, &v);
        let system = LinearSystem::new((*system.a).clone(), rhs);
        let mut solver = ConjugateGradient::unpreconditioned(
            system,
            Vector::zeros(N * N),
            StoppingCriteria::new(1e-6, 100_000),
        );

        let report = FaultTolerantRunner::new(RunConfig {
            strategy: CheckpointStrategy::lossy_default(),
            checkpoint_interval_iterations: 10,
            anchor_interval_snapshots: 0,
            cluster,
            pfs,
            level: CheckpointLevel::Pfs,
            mtti_seconds: 120.0,
            failure_seed: Some(1000 + outer as u64),
            max_failures: 20,
            max_executed_iterations: 100_000,
            num_threads: 0,
            persistence: Persistence::InMemory,
            backend: ExecutionBackend::Simulated,
        })
        .run(&mut solver, &accounting);

        let p = solver.solution().clone();
        correct_velocity(&mut u, &mut v, &p);
        let div_norm = divergence(&u, &v).norm2();
        total_pressure_iters += report.convergence_iterations;
        total_failures += report.failures;
        total_overhead += report.overhead_seconds;
        println!(
            "outer {outer:>2}: pressure solve {:>4} iters, {} failure(s), overhead {:>7.1} s, |div u| = {:.3e}",
            report.convergence_iterations, report.failures, report.overhead_seconds, div_norm
        );
    }

    println!(
        "\ntotals: {} pressure iterations, {} failures survived, {:.1} s simulated \
         fault-tolerance overhead",
        total_pressure_iters, total_failures, total_overhead
    );
    // The projection loop must reduce the divergence of the velocity field.
    let final_div = divergence(&u, &v).norm2();
    assert!(final_div.is_finite());
    println!("final |div u| = {final_div:.3e} (driven cavity, top lid u = 1)");
}
