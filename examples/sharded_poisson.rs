//! Sharded execution walkthrough: real domain-decomposed CG with halo
//! exchange, per-shard lossy checkpoints under a coordinated epoch commit,
//! and per-shard crash recovery.
//!
//! The global Poisson system is carved into `LCR_SHARDS` shards (default
//! 4) running concurrently in-process.  Every 5 iterations each shard
//! SZ-compresses its local solution slice into its own on-disk store; the
//! epoch commits only when *all* shard segments land.  Mid-run one shard
//! is fail-stopped: it reloads its slice from the newest committed epoch
//! while the survivors keep their in-memory state, and the run converges.
//!
//! ```bash
//! cargo run --release --example sharded_poisson
//! LCR_SHARDS=2 cargo run --release --example sharded_poisson
//! ```

use lossy_ckpt::core::sharded::{run_sharded, KillSpec, ShardedRunConfig};
use lossy_ckpt::solvers::ShardedMethod;
use lossy_ckpt::sparse::poisson::poisson3d;
use lossy_ckpt::sparse::Vector;

fn main() {
    let shards: usize = std::env::var("LCR_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(4);
    let dir = std::env::temp_dir().join(format!("lcr-example-sharded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 24³ Poisson; the paper's operator is negative definite, CG needs SPD.
    let mut a = poisson3d(24);
    for v in a.values_mut() {
        *v = -*v;
    }
    let b = Vector::filled(a.nrows(), 1.0);
    println!(
        "solving {} unknowns over {} shard(s), killing shard {} at iteration 12",
        a.nrows(),
        shards,
        1.min(shards - 1)
    );

    let mut cfg = ShardedRunConfig::new(shards, ShardedMethod::Cg);
    cfg.rtol = 1e-7;
    cfg.checkpoint_interval = 5;
    cfg.reduce_block = 512; // 27 reduction blocks: every shard owns some
    cfg.ckpt_dir = Some(dir.clone());
    cfg.kills = vec![KillSpec {
        shard: 1.min(shards - 1),
        at_iteration: 12,
    }];
    let report = run_sharded(&a, &b, &cfg);

    println!(
        "converged: {} after {} iterations ({} committed epoch(s), wall {:.1} ms)",
        report.converged,
        report.iterations,
        report.committed_epochs.len(),
        report.wall_seconds * 1e3
    );
    if let Some(epoch) = report.committed_epochs.last() {
        let mb: Vec<String> = epoch
            .shard_bytes
            .iter()
            .map(|&bytes| format!("{:.1}", bytes as f64 / 1e3))
            .collect();
        println!(
            "last epoch (iteration {}): per-shard segments [{}] kB",
            epoch.iteration,
            mb.join(", ")
        );
    }
    for stats in &report.shards {
        println!(
            "shard {}: {} rows, rollbacks {}, halo replays {}, resumed from {:?}, \
             {} halo doubles sent, {} checkpoints",
            stats.shard,
            stats.rows,
            stats.rollbacks,
            stats.halo_replays,
            stats.resumed_from_iteration,
            stats.halo_doubles_sent,
            stats.checkpoints_written
        );
    }

    // The recovery-isolation contract, asserted so CI can smoke-run this
    // example: only the failed shard rolled back.
    let victim = 1.min(shards - 1);
    for stats in &report.shards {
        if stats.shard == victim {
            assert_eq!(stats.rollbacks, 1, "failed shard rolls back once");
        } else {
            assert_eq!(stats.rollbacks, 0, "survivors must not roll back");
        }
    }
    assert!(report.converged, "run must converge after recovery");
    println!("OK: only shard {victim} rolled back; survivors kept their state");

    let _ = std::fs::remove_dir_all(&dir);
}
