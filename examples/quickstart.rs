//! Quickstart: solve a 3-D Poisson system with the conjugate gradient
//! method under lossy checkpointing, with failures injected on the
//! simulated cluster.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use lossy_ckpt::ckpt::{CheckpointLevel, ClusterConfig, PfsModel};
use lossy_ckpt::core::runner::{ExecutionBackend, FaultTolerantRunner, Persistence, RunConfig};
use lossy_ckpt::core::strategy::CheckpointStrategy;
use lossy_ckpt::core::workload::PaperWorkload;
use lossy_ckpt::solvers::SolverKind;

fn main() {
    // 1. Build the paper's workload: the 3-D Poisson system of Equation 15,
    //    sized for this host but accounted (for checkpoint I/O) as if it
    //    were the 2,048-process weak-scaling configuration of Table 3.
    let workload = PaperWorkload::poisson(2048, 12);
    let problem = workload.build();
    println!(
        "Local system: {} unknowns ({} non-zeros); paper-scale system: {} unknowns over {} ranks",
        problem.system.dim(),
        problem.system.a.nnz(),
        problem.paper_global_unknowns,
        problem.processes
    );

    // 2. Build the solver the paper evaluates (CG at rtol 1e-7 with a
    //    block-Jacobi/ILU(0) preconditioner).
    let mut solver = workload.build_solver(&problem, SolverKind::Cg, 500_000);

    // 3. Configure the fault-tolerant run: lossy (SZ, 1e-4 relative bound)
    //    checkpoints every 20 iterations, failures with a 30-minute MTTI on
    //    the simulated Bebop-like cluster.
    let config = RunConfig {
        strategy: CheckpointStrategy::lossy_default(),
        checkpoint_interval_iterations: 20,
        anchor_interval_snapshots: 0,
        cluster: ClusterConfig::bebop_like(2048, 0.9),
        pfs: PfsModel::bebop_like(),
        level: CheckpointLevel::Pfs,
        mtti_seconds: 1800.0,
        failure_seed: Some(42),
        max_failures: 100,
        max_executed_iterations: 500_000,
        num_threads: 0,
        persistence: Persistence::InMemory,
        backend: ExecutionBackend::Simulated,
    };

    // 4. Run and report.
    let report = FaultTolerantRunner::new(config).run(solver.as_mut(), &problem);
    println!("\n--- run report ---");
    println!("strategy:                {}", report.strategy);
    println!("convergence iterations:  {}", report.convergence_iterations);
    println!("executed iterations:     {}", report.executed_iterations);
    println!("checkpoints taken:       {}", report.checkpoints_taken);
    println!("failures / recoveries:   {} / {}", report.failures, report.recoveries);
    println!("mean compression ratio:  {:.1}x", report.mean_compression_ratio);
    println!("total simulated time:    {:.1} s", report.total_seconds);
    println!("productive time:         {:.1} s", report.productive_seconds);
    println!(
        "fault-tolerance overhead: {:.1} s ({:.1}% of productive time)",
        report.overhead_seconds,
        report.overhead_ratio() * 100.0
    );

    // 5. Validate the final answer against the manufactured exact solution.
    let err = solver.solution().max_abs_diff(&problem.exact_solution);
    println!("max |x - x*| = {err:.3e}");
    assert!(err < 1e-3, "solution accuracy degraded beyond tolerance");
    println!("solution verified against the exact manufactured solution ✔");
}
