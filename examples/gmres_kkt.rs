//! GMRES with a Jacobi preconditioner on a symmetric-indefinite KKT
//! (saddle-point) system — the Figure 3 workload — under the Theorem-3
//! adaptive lossy checkpointing policy.
//!
//! ```bash
//! cargo run --release --example gmres_kkt
//! ```

use lossy_ckpt::ckpt::{CheckpointLevel, ClusterConfig, PfsModel};
use lossy_ckpt::core::runner::{ExecutionBackend, FaultTolerantRunner, Persistence, RunConfig};
use lossy_ckpt::core::strategy::CheckpointStrategy;
use lossy_ckpt::core::workload::PaperWorkload;
use lossy_ckpt::solvers::SolverKind;

fn main() {
    // The synthetic stand-in for SuiteSparse KKT240 (see DESIGN.md): a
    // saddle-point system [[H, Aᵀ], [A, −δI]] that is symmetric and
    // indefinite, which is what makes GMRES + Jacobi the right pairing.
    let workload = PaperWorkload::kkt(4096, 8);
    let problem = workload.build();
    println!(
        "KKT system: {} unknowns locally, accounted as {} unknowns over {} ranks",
        problem.system.dim(),
        problem.paper_global_unknowns,
        problem.processes
    );

    // Failure-free reference.
    let mut reference = workload.build_solver(&problem, SolverKind::Gmres, 500_000);
    reference.run_to_convergence();
    println!(
        "failure-free GMRES(30): {} iterations, final residual {:.3e}",
        reference.iteration(),
        reference.residual_norm()
    );

    // Lossy-checkpointed run with failures every ~10 minutes of simulated
    // time and the Theorem-3 adaptive error bound.
    let mut solver = workload.build_solver(&problem, SolverKind::Gmres, 500_000);
    let report = FaultTolerantRunner::new(RunConfig {
        strategy: CheckpointStrategy::lossy_gmres(),
        checkpoint_interval_iterations: 25,
        anchor_interval_snapshots: 0,
        cluster: ClusterConfig::bebop_like(4096, 1.2),
        pfs: PfsModel::bebop_like(),
        level: CheckpointLevel::Pfs,
        mtti_seconds: 600.0,
        failure_seed: Some(99),
        max_failures: 100,
        max_executed_iterations: 500_000,
        num_threads: 0,
        persistence: Persistence::InMemory,
        backend: ExecutionBackend::Simulated,
    })
    .run(solver.as_mut(), &problem);

    println!("\n--- lossy-checkpointed run ---");
    println!("iterations to converge:  {}", report.convergence_iterations);
    println!(
        "extra vs failure-free:   {} (paper/Theorem 3: ≈0 for GMRES)",
        report
            .convergence_iterations
            .saturating_sub(reference.iteration())
    );
    println!("failures / recoveries:   {} / {}", report.failures, report.recoveries);
    println!("checkpoints taken:       {}", report.checkpoints_taken);
    println!("mean compression ratio:  {:.1}x", report.mean_compression_ratio);
    println!(
        "fault-tolerance overhead: {:.1} s ({:.1}%)",
        report.overhead_seconds,
        report.overhead_ratio() * 100.0
    );

    let rel_residual = problem
        .system
        .a
        .residual(solver.solution(), &problem.system.b)
        .norm2()
        / problem.system.b.norm2();
    println!("final relative residual: {rel_residual:.3e}");
    // GMRES stops on the left-preconditioned residual ‖M⁻¹(b − Ax)‖ (the
    // PETSc default the paper inherits), so that is the quantity held to the
    // paper's 7e-5 tolerance; with the Jacobi preconditioner on an
    // indefinite KKT diagonal the *true* relative residual lands around
    // 1e-2 — the same contract lcr-core's workload tests assert.
    let precond_rel = solver.residual_norm() / solver.reference_norm();
    println!("preconditioned rel residual: {precond_rel:.3e}");
    assert!(
        precond_rel < 1e-4,
        "GMRES failed to reach the preconditioned tolerance: {precond_rel:.3e}"
    );
    assert!(rel_residual < 1e-2, "GMRES failed to reach the tolerance");
}
